package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/anmat/anmat/internal/detect"
	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/table"
	"github.com/anmat/anmat/internal/tableau"
)

// shardKs is the shard-count matrix every equivalence assertion runs at.
var shardKs = []int{1, 2, 4, 8}

// testTable is a phone→state corpus with both a constant and a variable
// rule over the same columns (mirrors the stream package's corpus).
func testTable() *table.Table {
	t := table.MustNew("Phone", []string{"phone", "state", "note"})
	t.MustAppend("8501234567", "FL", "a")
	t.MustAppend("8507654321", "FL", "b")
	t.MustAppend("2121234567", "NY", "c")
	t.MustAppend("2127654321", "NY", "d")
	t.MustAppend("3051234567", "FL", "e")
	t.MustAppend("2129999999", "CA", "f")
	t.MustAppend("8505550000", "GA", "g")
	return t
}

func testRules() []*pfd.PFD {
	return []*pfd.PFD{
		pfd.New("Phone", "phone", "state", tableau.New(
			tableau.Row{LHS: pattern.MustParseConstrained(`<850>\D{7}`), RHS: "FL"},
			tableau.Row{LHS: pattern.MustParseConstrained(`<\D{3}>\D{7}`), RHS: tableau.Wildcard},
		)),
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fullDetect is the reference: a fresh whole-table detection.
func fullDetect(t *testing.T, tbl *table.Table, rules []*pfd.PFD, parallelism int) []pfd.Violation {
	t.Helper()
	res, err := detect.New(tbl, detect.Options{}).DetectAllContext(context.Background(), rules, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return res.Violations
}

// assertMerged checks the tentpole invariant: the coordinator's merged
// set is byte-identical to a fresh full detection over the global table,
// at parallelism 1 and 4.
func assertMerged(t *testing.T, c *Coordinator, tbl *table.Table, rules []*pfd.PFD) {
	t.Helper()
	got := mustJSON(t, c.Violations())
	for _, par := range []int{1, 4} {
		want := mustJSON(t, fullDetect(t, tbl, rules, par))
		if got != want {
			t.Fatalf("k=%d merged set diverged from full detection (parallelism %d):\n got %s\nwant %s", c.Shards(), par, got, want)
		}
	}
}

func TestBootstrapMatchesFullDetection(t *testing.T) {
	for _, k := range shardKs {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			tbl := testTable()
			rules := testRules()
			c, err := New(tbl, rules, k)
			if err != nil {
				t.Fatal(err)
			}
			assertMerged(t, c, tbl, rules)
			if c.Seq() != 0 {
				t.Errorf("fresh coordinator seq = %d", c.Seq())
			}
			if c.Stale() {
				t.Error("fresh coordinator is stale")
			}
		})
	}
}

func TestDeltasMatchFullDetection(t *testing.T) {
	for _, k := range shardKs {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			tbl := testTable()
			rules := testRules()
			c, err := New(tbl, rules, k)
			if err != nil {
				t.Fatal(err)
			}
			batches := []stream.Batch{
				{stream.AppendRows([]string{"8500000001", "TX", "h"}, []string{"2120000001", "NY", "i"})},
				{stream.UpdateCell(2, "state", "CT")},
				{stream.UpdateCell(0, "phone", "2121230000")}, // moves the row's block key
				{stream.DeleteRows(1, 4)},
				{stream.AppendRows([]string{"8501111111", "FL", "j"}), stream.UpdateCell(0, "state", "AL"), stream.DeleteRows(3)},
			}
			for i, b := range batches {
				if _, err := c.Apply(b); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
				assertMerged(t, c, tbl, rules)
				if got := int64(i + 1); c.Seq() != got {
					t.Fatalf("batch %d: seq = %d", i, c.Seq())
				}
			}
		})
	}
}

// TestKeyMoveAcrossShards drives a specific update that changes a row's
// block key — and with it, the shard owning the row — and verifies the
// row migrated (placement-wise) and the merged set stays exact.
func TestKeyMoveAcrossShards(t *testing.T) {
	tbl := testTable()
	rules := testRules()
	c, err := New(tbl, rules, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := fmt.Sprint(c.tr.rows[0].locals)
	// 850… → 212…: the variable row's key moves from block "850" to "212".
	if _, err := c.Apply(stream.Batch{stream.UpdateCell(0, "phone", "2120007777")}); err != nil {
		t.Fatal(err)
	}
	assertMerged(t, c, tbl, rules)
	owner850, owner212 := Owner("850", 4), Owner("212", 4)
	if owner850 != owner212 {
		if _, ok := c.tr.rows[0].local(owner212); !ok {
			t.Errorf("row 0 not hosted on the new key's owner shard %d (placement %v -> %v)", owner212, before, c.tr.rows[0].locals)
		}
		if _, ok := c.tr.rows[0].local(owner850); ok && owner850 != int(c.tr.rows[0].home) {
			t.Errorf("row 0 still hosted on the old key's owner shard %d", owner850)
		}
	}
	// And back, plus a conflicting value, to exercise re-migration.
	if _, err := c.Apply(stream.Batch{stream.UpdateCell(0, "phone", "8500007777"), stream.UpdateCell(0, "state", "NV")}); err != nil {
		t.Fatal(err)
	}
	assertMerged(t, c, tbl, rules)
}

// TestDeleteSpanningShards deletes rows hosted on different shards in one
// batch, so global renumbering crosses every shard's local space.
func TestDeleteSpanningShards(t *testing.T) {
	for _, k := range shardKs {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			tbl := testTable()
			rules := testRules()
			c, err := New(tbl, rules, k)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Apply(stream.Batch{stream.DeleteRows(0, 3, 6)}); err != nil {
				t.Fatal(err)
			}
			assertMerged(t, c, tbl, rules)
			if tbl.NumRows() != 4 {
				t.Fatalf("global rows = %d", tbl.NumRows())
			}
			// Every surviving row's recorded locals must resolve back to it —
			// in the translator's mirror AND on the nodes themselves.
			for g, place := range c.tr.rows {
				for _, lr := range place.locals {
					s, local := int(lr.shard), int(lr.local)
					if got := c.tr.globalOf[s][local]; got != g {
						t.Fatalf("row %d: shard %d local %d maps to global %d", g, s, local, got)
					}
					node := c.nodes[s].(*LocalNode)
					if got := node.GlobalOf()[local]; got != g {
						t.Fatalf("row %d: shard %d node local %d maps to global %d", g, s, local, got)
					}
					if mustJSON(t, node.Table().Row(local)) != mustJSON(t, tbl.Row(g)) {
						t.Fatalf("row %d: shard %d copy diverged", g, s)
					}
				}
			}
		})
	}
}

func TestCoordinatorSinceAndDiffs(t *testing.T) {
	tbl := testTable()
	rules := testRules()
	c, err := NewFrom(tbl, rules, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shadow state folded from diffs must track Violations exactly.
	shadow := make(map[string]pfd.Violation)
	for _, v := range c.Violations() {
		shadow[v.Key()] = v
	}
	batches := []stream.Batch{
		{stream.AppendRows([]string{"8509990000", "CA", "x"})},
		{stream.UpdateCell(7, "state", "FL")},
		{stream.DeleteRows(2)},
	}
	for i, b := range batches {
		diff, err := c.Apply(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for _, v := range diff.Removed {
			delete(shadow, v.Key())
		}
		for _, v := range diff.Added {
			shadow[v.Key()] = v
		}
		want := c.Violations()
		folded := make([]pfd.Violation, 0, len(shadow))
		for _, v := range shadow {
			folded = append(folded, v)
		}
		detect.SortViolations(folded)
		if mustJSON(t, folded) != mustJSON(t, want) {
			t.Fatalf("batch %d: folding diffs diverged from the merged set", i)
		}
	}
	// Since(0) must net to exactly "current minus bootstrap".
	diff, err := c.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Seq != 3 || diff.Reset {
		t.Fatalf("since(0) = seq %d reset %v", diff.Seq, diff.Reset)
	}
	// A cursor at the head is empty; one beyond it errors.
	head, err := c.Since(3)
	if err != nil || len(head.Added)+len(head.Removed) != 0 {
		t.Fatalf("since(head) = %+v, %v", head, err)
	}
	if _, err := c.Since(4); err == nil {
		t.Fatal("cursor beyond head must error")
	}
}

func TestCoordinatorStaleAndBadBatch(t *testing.T) {
	tbl := testTable()
	c, err := New(tbl, testRules(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(stream.Batch{stream.UpdateCell(99, "state", "FL")}); err == nil {
		t.Fatal("out-of-range update must be rejected")
	}
	// A rejected batch changes nothing.
	assertMerged(t, c, tbl, testRules())
	tbl.SetCell(0, 1, "ZZ") // external mutation
	if !c.Stale() {
		t.Fatal("externally mutated table must mark the coordinator stale")
	}
	if _, err := c.Apply(stream.Batch{stream.UpdateCell(0, "state", "FL")}); err == nil {
		t.Fatal("stale coordinator must refuse batches")
	}
}

func TestCoordinatorStats(t *testing.T) {
	tbl := testTable()
	c, err := New(tbl, testRules(), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Shards != 4 || st.Rows != tbl.NumRows() {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard entries = %d", len(st.PerShard))
	}
	total := 0
	for _, ps := range st.PerShard {
		total += ps.Rows
	}
	if st.Replication < 1.0 || float64(total) != st.Replication*float64(st.Rows) {
		t.Fatalf("replication %v inconsistent with shard rows %d / global %d", st.Replication, total, st.Rows)
	}
	if st.Violations != len(c.Violations()) {
		t.Fatalf("stats violations %d != %d", st.Violations, len(c.Violations()))
	}
}

func TestOwnerDeterministicAndInRange(t *testing.T) {
	keys := []string{"", "850", "212", "90", "\x1fa\x1fb", "long-key-with-more-bytes"}
	for _, k := range []int{1, 2, 4, 8, 16} {
		for _, key := range keys {
			s := Owner(key, k)
			if s < 0 || s >= k {
				t.Fatalf("Owner(%q, %d) = %d out of range", key, k, s)
			}
			if s != Owner(key, k) {
				t.Fatalf("Owner(%q, %d) not deterministic", key, k)
			}
		}
	}
	// Jump-hash consistency: growing the shard count never moves a key
	// that jump assigns below the old count... (monotone property: a key's
	// bucket under k+1 is either its bucket under k or the new bucket k).
	for _, key := range keys {
		for k := 1; k < 16; k++ {
			a, b := Owner(key, k), Owner(key, k+1)
			if b != a && b != k {
				t.Fatalf("Owner(%q): %d shards -> %d, %d shards -> %d (not consistent)", key, k, a, k+1, b)
			}
		}
	}
}
