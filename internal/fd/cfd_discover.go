package fd

import (
	"sort"

	"github.com/anmat/anmat/internal/table"
)

// CFDConfig controls constant-CFD discovery.
type CFDConfig struct {
	// MinSupport is the minimum number of rows sharing the LHS value.
	MinSupport int
	// MaxViolationRatio is the tolerated disagreement within a group.
	MaxViolationRatio float64
}

// DiscoverCFDs mines constant conditional functional dependencies: for
// every column pair (A, B), each frequent A-value whose rows agree on a
// majority B-value within the violation budget becomes a tableau row
// (a → b). This is the strongest whole-value baseline: strictly more
// expressive than plain FDs, still blind to partial-value structure.
func DiscoverCFDs(t *table.Table, cfg CFDConfig) []CFD {
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 4
	}
	cols := t.Columns()
	var out []CFD
	for ai, a := range cols {
		for bi, b := range cols {
			if a == b {
				continue
			}
			rows := mineCFDRows(t, ai, bi, cfg)
			if len(rows) > 0 {
				out = append(out, CFD{LHS: a, RHS: b, Rows: rows})
			}
		}
	}
	return out
}

func mineCFDRows(t *table.Table, ai, bi int, cfg CFDConfig) []CFDRow {
	groups := make(map[string]map[string]int)
	for r := 0; r < t.NumRows(); r++ {
		a, b := t.Cell(r, ai), t.Cell(r, bi)
		if a == "" {
			continue
		}
		if groups[a] == nil {
			groups[a] = make(map[string]int)
		}
		groups[a][b]++
	}
	var keys []string
	for a := range groups {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	var rows []CFDRow
	for _, a := range keys {
		counts := groups[a]
		total, maj, majN := 0, "", -1
		for b, c := range counts {
			total += c
			if c > majN || (c == majN && b < maj) {
				maj, majN = b, c
			}
		}
		if total < cfg.MinSupport {
			continue
		}
		if float64(total-majN)/float64(total) > cfg.MaxViolationRatio {
			continue
		}
		rows = append(rows, CFDRow{LHSVal: a, RHSVal: maj})
	}
	return rows
}
