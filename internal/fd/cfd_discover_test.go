package fd

import (
	"testing"

	"github.com/anmat/anmat/internal/datagen"
	"github.com/anmat/anmat/internal/table"
)

func findCFD(cfds []CFD, lhs, rhs string) *CFD {
	for i := range cfds {
		if cfds[i].LHS == lhs && cfds[i].RHS == rhs {
			return &cfds[i]
		}
	}
	return nil
}

func TestDiscoverCFDsBasic(t *testing.T) {
	tb := table.MustNew("t", []string{"city", "state"})
	for i := 0; i < 5; i++ {
		tb.MustAppend("Chicago", "IL")
		tb.MustAppend("Boston", "MA")
	}
	tb.MustAppend("Chicago", "WI") // one dirty row

	cfds := DiscoverCFDs(tb, CFDConfig{MinSupport: 4, MaxViolationRatio: 0.2})
	c := findCFD(cfds, "city", "state")
	if c == nil {
		t.Fatal("no city→state CFD")
	}
	want := map[string]string{"Chicago": "IL", "Boston": "MA"}
	if len(c.Rows) != 2 {
		t.Fatalf("rows = %+v", c.Rows)
	}
	for _, r := range c.Rows {
		if want[r.LHSVal] != r.RHSVal {
			t.Errorf("row %v, want %q", r, want[r.LHSVal])
		}
	}
	// Checking the mined CFD flags the dirty row.
	vs, err := CheckCFD(tb, *c)
	if err != nil || len(vs) != 1 || vs[0].RHSJ != "WI" {
		t.Errorf("CFD check = %+v, %v", vs, err)
	}
}

func TestDiscoverCFDsRespectsSupport(t *testing.T) {
	tb := table.MustNew("t", []string{"a", "b"})
	tb.MustAppend("x", "1")
	tb.MustAppend("x", "1")
	tb.MustAppend("y", "2")
	cfds := DiscoverCFDs(tb, CFDConfig{MinSupport: 3, MaxViolationRatio: 0})
	if findCFD(cfds, "a", "b") != nil {
		t.Error("groups below support should not form rows")
	}
}

func TestDiscoverCFDsRespectsViolationBudget(t *testing.T) {
	tb := table.MustNew("t", []string{"a", "b"})
	for i := 0; i < 6; i++ {
		tb.MustAppend("x", "1")
	}
	tb.MustAppend("x", "2")
	tb.MustAppend("x", "3")
	strict := DiscoverCFDs(tb, CFDConfig{MinSupport: 4, MaxViolationRatio: 0})
	if findCFD(strict, "a", "b") != nil {
		t.Error("strict budget should reject the dirty group")
	}
	loose := DiscoverCFDs(tb, CFDConfig{MinSupport: 4, MaxViolationRatio: 0.3})
	if findCFD(loose, "a", "b") == nil {
		t.Error("loose budget should keep the group")
	}
}

// The PFD-vs-CFD contrast: CFDs mined over whole phone numbers get one
// row per distinct phone (no support) and therefore mine nothing, while
// PFD discovery finds the area-code rules (covered in experiments).
func TestCFDBlindSpotOnCodes(t *testing.T) {
	ds := datagen.PhoneState(2000, 0.005, 17)
	cfds := DiscoverCFDs(ds.Table, CFDConfig{MinSupport: 4, MaxViolationRatio: 0.02})
	if c := findCFD(cfds, "phone", "state"); c != nil && len(c.Rows) > 2 {
		t.Errorf("whole-value CFDs should find (almost) nothing on unique phones, got %d rows", len(c.Rows))
	}
}
