package fd

import (
	"math/rand"
	"testing"

	"github.com/anmat/anmat/internal/table"
)

func sample() *table.Table {
	t := table.MustNew("t", []string{"zip", "city", "state"})
	t.MustAppend("90001", "Los Angeles", "CA")
	t.MustAppend("90002", "Los Angeles", "CA")
	t.MustAppend("60601", "Chicago", "IL")
	t.MustAppend("60601", "Chicago", "IL")
	t.MustAppend("60602", "Chicago", "IL")
	return t
}

func hasFD(fds []FD, lhs, rhs string) bool {
	for _, f := range fds {
		if f.LHS == lhs && f.RHS == rhs {
			return true
		}
	}
	return false
}

func TestDiscoverExact(t *testing.T) {
	fds := Discover(sample(), 0)
	if !hasFD(fds, "zip", "city") || !hasFD(fds, "zip", "state") {
		t.Errorf("zip FDs missing: %v", fds)
	}
	if !hasFD(fds, "city", "state") {
		t.Errorf("city -> state missing: %v", fds)
	}
	if hasFD(fds, "state", "zip") {
		t.Errorf("state -> zip should not hold: %v", fds)
	}
}

func TestDiscoverApproximate(t *testing.T) {
	tb := sample()
	tb.MustAppend("60601", "Chicago", "IN") // one dirty state
	exact := Discover(tb, 0)
	if hasFD(exact, "zip", "state") {
		t.Error("exact discovery should reject dirty FD")
	}
	// One disagreeing row out of the 3-row stripped group: ratio 1/3.
	approx := Discover(tb, 0.34)
	if !hasFD(approx, "zip", "state") {
		t.Errorf("approximate discovery should keep dirty FD: %v", approx)
	}
}

func TestDiscoverAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tb := table.MustNew("r", []string{"a", "b"})
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			tb.MustAppend(
				string(rune('a'+rng.Intn(3))),
				string(rune('x'+rng.Intn(3))),
			)
		}
		fds := Discover(tb, 0)
		// Brute force: a->b holds iff no two rows agree on a, differ on b.
		holds := func(lhs, rhs int) bool {
			for i := 0; i < tb.NumRows(); i++ {
				for j := i + 1; j < tb.NumRows(); j++ {
					if tb.Cell(i, lhs) == tb.Cell(j, lhs) && tb.Cell(i, rhs) != tb.Cell(j, rhs) {
						return false
					}
				}
			}
			return true
		}
		if got, want := hasFD(fds, "a", "b"), holds(0, 1); got != want {
			t.Fatalf("trial %d: a->b discover=%v brute=%v", trial, got, want)
		}
		if got, want := hasFD(fds, "b", "a"), holds(1, 0); got != want {
			t.Fatalf("trial %d: b->a discover=%v brute=%v", trial, got, want)
		}
	}
}

func TestCheckViolations(t *testing.T) {
	tb := sample()
	tb.MustAppend("60601", "Springfield", "IL") // violates zip -> city
	vs, err := Check(tb, FD{LHS: "zip", RHS: "city"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %+v", vs)
	}
	v := vs[0]
	if v.RowJ != 5 || v.RHSJ != "Springfield" || v.RHSI != "Chicago" {
		t.Errorf("violation = %+v", v)
	}
	rows := ViolatingRows(vs)
	if !rows[5] || len(rows) != 1 {
		t.Errorf("ViolatingRows = %v", rows)
	}
}

func TestCheckCleanTable(t *testing.T) {
	vs, err := Check(sample(), FD{LHS: "zip", RHS: "city"})
	if err != nil || len(vs) != 0 {
		t.Errorf("clean check = %v, %v", vs, err)
	}
}

func TestCheckMissingColumn(t *testing.T) {
	if _, err := Check(sample(), FD{LHS: "nope", RHS: "city"}); err == nil {
		t.Error("missing LHS should error")
	}
	if _, err := Check(sample(), FD{LHS: "zip", RHS: "nope"}); err == nil {
		t.Error("missing RHS should error")
	}
}

func TestCheckCFDConstant(t *testing.T) {
	tb := sample()
	tb.MustAppend("90009", "New York", "CA") // violates (Los Angeles-area constant rule)?
	c := CFD{
		LHS: "city", RHS: "state",
		Rows: []CFDRow{{LHSVal: "New York", RHSVal: "NY"}},
	}
	vs, err := CheckCFD(tb, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].RowJ != 5 {
		t.Errorf("CFD constant violations = %+v", vs)
	}
}

func TestCheckCFDWildcardLHS(t *testing.T) {
	tb := sample()
	tb.MustAppend("60601", "Peoria", "IL")
	c := CFD{LHS: "zip", RHS: "city", Rows: []CFDRow{{LHSVal: Wild, RHSVal: Wild}}}
	vs, err := CheckCFD(tb, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].RHSJ != "Peoria" {
		t.Errorf("CFD wildcard violations = %+v", vs)
	}
}

func TestCheckCFDConstantLHSWildcardRHS(t *testing.T) {
	tb := sample()
	tb.MustAppend("60601", "Chicago", "WI")
	c := CFD{LHS: "city", RHS: "state", Rows: []CFDRow{{LHSVal: "Chicago", RHSVal: Wild}}}
	vs, err := CheckCFD(tb, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].RHSJ != "WI" {
		t.Errorf("CFD group violations = %+v", vs)
	}
}

func TestCheckCFDMissingColumns(t *testing.T) {
	if _, err := CheckCFD(sample(), CFD{LHS: "x", RHS: "state"}); err == nil {
		t.Error("bad LHS should error")
	}
	if _, err := CheckCFD(sample(), CFD{LHS: "city", RHS: "x"}); err == nil {
		t.Error("bad RHS should error")
	}
}

// The headline claim of the paper: FDs over whole values cannot catch the
// error that a PFD catches, because the dirty tuple's LHS value is unique.
func TestFDBlindSpot(t *testing.T) {
	tb := table.MustNew("Zip", []string{"zip", "city"})
	tb.MustAppend("90001", "Los Angeles")
	tb.MustAppend("90002", "Los Angeles")
	tb.MustAppend("90003", "Los Angeles")
	tb.MustAppend("90004", "New York") // dirty, but zip 90004 is unique
	vs, err := Check(tb, FD{LHS: "zip", RHS: "city"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("whole-value FD should be blind to s4, found %+v", vs)
	}
	// The FD even *holds* on the dirty data.
	if !hasFD(Discover(tb, 0), "zip", "city") {
		t.Error("zip -> city should hold over whole values")
	}
}
