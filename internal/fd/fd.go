// Package fd implements the classical baselines the paper compares
// against: exact functional-dependency discovery by partition refinement
// (the core of TANE) and FD/CFD violation detection over whole attribute
// values. PFDs subsume these; the baseline exists to demonstrate the
// errors that whole-value dependencies cannot catch (Section 1:
// "the fundamental limitation of previous ICs").
package fd

import (
	"fmt"
	"sort"

	"github.com/anmat/anmat/internal/table"
)

// FD is a whole-value functional dependency A → B over single attributes.
type FD struct {
	LHS, RHS string
}

// String renders the dependency.
func (f FD) String() string { return f.LHS + " -> " + f.RHS }

// partition returns the stripped partition of a column: the groups of row
// ids sharing a value, with singleton groups removed (they can never
// witness or violate an FD).
func partition(values []string) [][]int {
	groups := make(map[string][]int)
	for i, v := range values {
		groups[v] = append(groups[v], i)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// refines reports whether the LHS partition refines the RHS values: every
// LHS group agrees on the RHS. This is the TANE criterion |π_A| = |π_{AB}|
// specialized to single attributes, with an error budget: up to maxViol
// rows per group may disagree with the group's majority (g3-style
// approximate FDs), supporting discovery from dirty data.
func refines(lhsPart [][]int, rhs []string, maxViolRatio float64) bool {
	total, viol := 0, 0
	for _, g := range lhsPart {
		counts := make(map[string]int)
		for _, r := range g {
			counts[rhs[r]]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		total += len(g)
		viol += len(g) - max
	}
	if total == 0 {
		return true
	}
	return float64(viol)/float64(total) <= maxViolRatio
}

// Discover finds all single-attribute FDs A → B holding on the table
// exactly (maxViolRatio = 0) or approximately.
func Discover(t *table.Table, maxViolRatio float64) []FD {
	cols := t.Columns()
	parts := make(map[string][][]int, len(cols))
	vals := make(map[string][]string, len(cols))
	for i, c := range cols {
		v := t.ColumnByIndex(i)
		vals[c] = v
		parts[c] = partition(v)
	}
	var out []FD
	for _, a := range cols {
		for _, b := range cols {
			if a == b {
				continue
			}
			if refines(parts[a], vals[b], maxViolRatio) {
				out = append(out, FD{LHS: a, RHS: b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LHS != out[j].LHS {
			return out[i].LHS < out[j].LHS
		}
		return out[i].RHS < out[j].RHS
	})
	return out
}

// Violation is a whole-value FD violation: two rows agree on the LHS and
// disagree on the RHS.
type Violation struct {
	FD     FD
	RowI   int
	RowJ   int
	LHSVal string
	RHSI   string
	RHSJ   string
}

// Check returns the violations of an FD. It reports one violation per
// offending row against the group's majority representative, mirroring the
// linear pairing the PFD engine uses, so violation counts are comparable.
func Check(t *table.Table, f FD) ([]Violation, error) {
	li, ok := t.ColIndex(f.LHS)
	if !ok {
		return nil, fmt.Errorf("fd %s: no column %q", f, f.LHS)
	}
	ri, ok := t.ColIndex(f.RHS)
	if !ok {
		return nil, fmt.Errorf("fd %s: no column %q", f, f.RHS)
	}
	groups := make(map[string][]int)
	for r := 0; r < t.NumRows(); r++ {
		v := t.Cell(r, li)
		groups[v] = append(groups[v], r)
	}
	var keys []string
	for k, g := range groups {
		if len(g) > 1 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []Violation
	for _, k := range keys {
		g := groups[k]
		counts := make(map[string]int)
		for _, r := range g {
			counts[t.Cell(r, ri)]++
		}
		maj, majN := "", -1
		for v, c := range counts {
			if c > majN || (c == majN && v < maj) {
				maj, majN = v, c
			}
		}
		if majN == len(g) {
			continue
		}
		rep := -1
		for _, r := range g {
			if t.Cell(r, ri) == maj {
				rep = r
				break
			}
		}
		for _, r := range g {
			if t.Cell(r, ri) != maj {
				out = append(out, Violation{
					FD: f, RowI: rep, RowJ: r,
					LHSVal: k, RHSI: maj, RHSJ: t.Cell(r, ri),
				})
			}
		}
	}
	return out, nil
}

// CFD is a conditional functional dependency with a constant pattern
// tableau over whole values: rows (lhsValue → rhsValue) where lhsValue "_"
// is the wildcard matching any value (in which case the rule degrades to
// the embedded FD on matching rows).
type CFD struct {
	LHS, RHS string
	Rows     []CFDRow
}

// CFDRow is one tableau row of a CFD.
type CFDRow struct {
	LHSVal string // "_" = wildcard
	RHSVal string // "_" = wildcard (agreement semantics)
}

// Wild is the CFD wildcard.
const Wild = "_"

// CheckCFD returns the rows of t violating the CFD. Constant rows flag
// single tuples; wildcard rows flag whole-value FD violations restricted
// to the matching tuples.
func CheckCFD(t *table.Table, c CFD) ([]Violation, error) {
	li, ok := t.ColIndex(c.LHS)
	if !ok {
		return nil, fmt.Errorf("cfd: no column %q", c.LHS)
	}
	ri, ok := t.ColIndex(c.RHS)
	if !ok {
		return nil, fmt.Errorf("cfd: no column %q", c.RHS)
	}
	f := FD{LHS: c.LHS, RHS: c.RHS}
	var out []Violation
	for _, row := range c.Rows {
		switch {
		case row.LHSVal != Wild && row.RHSVal != Wild:
			for r := 0; r < t.NumRows(); r++ {
				if t.Cell(r, li) == row.LHSVal && t.Cell(r, ri) != row.RHSVal {
					out = append(out, Violation{
						FD: f, RowI: r, RowJ: r,
						LHSVal: row.LHSVal, RHSI: row.RHSVal, RHSJ: t.Cell(r, ri),
					})
				}
			}
		case row.LHSVal != Wild: // constant LHS, wildcard RHS
			var rows []int
			for r := 0; r < t.NumRows(); r++ {
				if t.Cell(r, li) == row.LHSVal {
					rows = append(rows, r)
				}
			}
			out = append(out, groupViolations(t, f, ri, row.LHSVal, rows)...)
		default: // wildcard LHS: plain FD semantics
			vs, err := Check(t, f)
			if err != nil {
				return nil, err
			}
			out = append(out, vs...)
		}
	}
	return out, nil
}

func groupViolations(t *table.Table, f FD, ri int, lhsVal string, g []int) []Violation {
	if len(g) < 2 {
		return nil
	}
	counts := make(map[string]int)
	for _, r := range g {
		counts[t.Cell(r, ri)]++
	}
	maj, majN := "", -1
	for v, c := range counts {
		if c > majN || (c == majN && v < maj) {
			maj, majN = v, c
		}
	}
	if majN == len(g) {
		return nil
	}
	rep := -1
	for _, r := range g {
		if t.Cell(r, ri) == maj {
			rep = r
			break
		}
	}
	var out []Violation
	for _, r := range g {
		if t.Cell(r, ri) != maj {
			out = append(out, Violation{
				FD: f, RowI: rep, RowJ: r,
				LHSVal: lhsVal, RHSI: maj, RHSJ: t.Cell(r, ri),
			})
		}
	}
	return out
}

// ViolatingRows collects the distinct offending row ids from violations
// (RowJ is the offender under majority semantics).
func ViolatingRows(vs []Violation) map[int]bool {
	m := make(map[int]bool, len(vs))
	for _, v := range vs {
		m[v.RowJ] = true
	}
	return m
}
