package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/anmat/anmat/internal/datagen"
	"github.com/anmat/anmat/internal/detect"
	"github.com/anmat/anmat/internal/discovery"
	"github.com/anmat/anmat/internal/docstore"
	"github.com/anmat/anmat/internal/invlist"
	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/tableau"
)

func TestPipelineEndToEnd(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	sys.CreateProject("demo")
	if ps := sys.Projects(); len(ps) != 1 || ps[0] != "demo" {
		t.Fatalf("Projects = %v", ps)
	}

	d := datagen.ZipCity(1500, 0.005, 42)
	se := sys.NewSession("demo", d.Table, DefaultParams())
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(se.Profile.Columns) != 3 {
		t.Errorf("profile columns = %d", len(se.Profile.Columns))
	}
	if len(se.Discovered) == 0 {
		t.Fatal("no PFDs discovered")
	}
	if len(se.Violations) == 0 {
		t.Fatal("no violations on dirty data")
	}
	if len(se.Repairs) == 0 {
		t.Fatal("no repairs suggested")
	}

	// Results were persisted.
	if sys.Store().Count(CollPFDs, nil) == 0 {
		t.Error("PFDs not stored")
	}
	if sys.Store().Count(CollViolations, nil) == 0 {
		t.Error("violations not stored")
	}
	if sys.Store().Count(CollProfiles, nil) != 1 {
		t.Error("profile not stored")
	}
}

func TestDetectionFindsInjectedErrors(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.PhoneState(3000, 0.005, 43)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	flagged := map[int]bool{}
	for _, v := range se.Violations {
		for _, tu := range v.Tuples {
			flagged[tu] = true
		}
	}
	injected := d.InjectedRows()
	caught := 0
	for r := range injected {
		if flagged[r] {
			caught++
		}
	}
	if len(injected) == 0 {
		t.Fatal("no injected errors to find")
	}
	recall := float64(caught) / float64(len(injected))
	if recall < 0.9 {
		t.Errorf("recall = %.2f (%d/%d)", recall, caught, len(injected))
	}
}

func TestConfirmSubset(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(1200, 0.005, 44)
	se := sys.NewSession("p", d.Table, DefaultParams())
	se.RunProfile()
	if _, err := se.RunDiscovery(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(se.Discovered) < 2 {
		t.Skipf("need ≥2 PFDs, got %d", len(se.Discovered))
	}
	only := se.Discovered[0].ID()
	got := se.Confirm(only)
	if len(got) != 1 || got[0].ID() != only {
		t.Fatalf("Confirm(%s) = %v", only, got)
	}
	vs, err := se.RunDetection(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.PFDID != only {
			t.Errorf("violation from unconfirmed PFD %s", v.PFDID)
		}
	}
}

func TestConfirmAllByDefault(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(800, 0, 45)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if _, err := se.RunDiscovery(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := se.Confirm(); len(got) != len(se.Discovered) {
		t.Errorf("Confirm() = %d, want all %d", len(got), len(se.Discovered))
	}
}

func TestRunDMV(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(600, 0, 47)
	zi, _ := d.Table.ColIndex("zip")
	for r := 0; r < d.Table.NumRows(); r += 60 {
		d.Table.SetCell(r, zi, "N/A")
	}
	se := sys.NewSession("p", d.Table, DefaultParams())
	findings := se.RunDMV()
	if len(findings) == 0 {
		t.Fatal("no DMV findings")
	}
	found := false
	for _, f := range findings {
		if f.Column == "zip" {
			for _, s := range f.Suspects {
				if s.Value == "N/A" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("N/A not flagged: %+v", findings)
	}
	if sys.Store().Count("dmv_findings", nil) == 0 {
		t.Error("findings not stored")
	}
	// Re-running replaces, not duplicates, the in-session findings.
	if got := se.RunDMV(); len(got) != len(findings) {
		t.Errorf("re-run findings = %d, want %d", len(got), len(findings))
	}
}

func TestLoadPFDsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/store.json"
	store, err := docstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(store)
	d := datagen.ZipCity(1000, 0.01, 46)

	// Session 1: discover and persist.
	se := sys.NewSession("p", d.Table, DefaultParams())
	if _, err := se.RunDiscovery(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(se.Discovered) == 0 {
		t.Fatal("nothing discovered")
	}
	wantViolations, err := se.RunDetection(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	// Session 2 (fresh store handle): reload rules and re-detect without
	// discovery.
	store2, err := docstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(store2)
	loaded, err := sys2.LoadPFDs(d.Table.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(se.Discovered) {
		t.Fatalf("loaded %d PFDs, stored %d", len(loaded), len(se.Discovered))
	}
	se2 := sys2.NewSession("p", d.Table, DefaultParams())
	se2.UseRules(loaded)
	got, err := se2.RunDetection(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantViolations) {
		t.Errorf("reloaded rules found %d violations, original %d", len(got), len(wantViolations))
	}

	// Filter by table name.
	none, err := sys2.LoadPFDs("not-a-table")
	if err != nil || len(none) != 0 {
		t.Errorf("LoadPFDs(bogus) = %d, %v", len(none), err)
	}
	all, err := sys2.LoadPFDs("")
	if err != nil || len(all) != len(loaded) {
		t.Errorf("LoadPFDs(all) = %d, %v", len(all), err)
	}
}

func TestLoadPFDsCorruptDoc(t *testing.T) {
	store := docstore.NewMem()
	store.Insert(CollPFDs, docstore.Doc{"table": "t", "tableau": []any{map[string]any{"lhs": "<\\L", "rhs": "x"}}})
	sys := NewSystem(store)
	if _, err := sys.LoadPFDs("t"); err == nil {
		t.Error("corrupt stored PFD should error")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.MinCoverage <= 0 || p.MinCoverage >= 1 {
		t.Errorf("MinCoverage = %f", p.MinCoverage)
	}
	if p.AllowedViolations < 0 || p.AllowedViolations >= 1 {
		t.Errorf("AllowedViolations = %f", p.AllowedViolations)
	}
}

// TestRunCancelledMidDiscovery is the cancellation contract: cancelling
// the context while discovery is mining aborts Session.Run with an error
// wrapping context.Canceled.
func TestRunCancelledMidDiscovery(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(2000, 0.005, 48)
	se := sys.NewSession("p", d.Table, DefaultParams())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once sync.Once
	cfg := discovery.Default()
	cfg.Parallelism = 1
	// The decision function parks the miner mid-candidate until the test
	// has cancelled, so Run is provably cancelled *during* discovery.
	cfg.Decision = func(e invlist.Entry) bool {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return false
	}
	se.Discovery = &cfg

	errc := make(chan error, 1)
	go func() { errc <- se.Run(ctx) }()
	<-started
	cancel()
	err := <-errc
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under cancelled ctx = %v, want wrapped context.Canceled", err)
	}
	if len(se.Discovered) != 0 {
		t.Errorf("cancelled run still published %d PFDs", len(se.Discovered))
	}
}

// TestRunStagesCancelledBetweenStages checks the stage-boundary ctx check.
func TestRunStagesCancelledBetweenStages(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(300, 0, 49)
	se := sys.NewSession("p", d.Table, DefaultParams())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := se.RunStages(ctx, StageProfile); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled RunStages = %v, want context.Canceled", err)
	}
	if _, err := se.RunDetection(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled RunDetection = %v, want context.Canceled", err)
	}
}

// TestRunStagesComposition exercises the partial flows the stage API is
// for: profile-only, discovery-only, and detect-with-installed-rules.
func TestRunStagesComposition(t *testing.T) {
	ctx := context.Background()
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(1000, 0.01, 50)

	profOnly := sys.NewSession("p", d.Table, DefaultParams())
	if err := profOnly.RunStages(ctx, StageProfile); err != nil {
		t.Fatal(err)
	}
	if len(profOnly.Profile.Columns) == 0 || profOnly.Discovered != nil {
		t.Fatalf("profile-only ran discovery: %d PFDs", len(profOnly.Discovered))
	}

	discOnly := sys.NewSession("p", d.Table, DefaultParams())
	if err := discOnly.RunStages(ctx, StageProfile, StageDiscovery); err != nil {
		t.Fatal(err)
	}
	if len(discOnly.Discovered) == 0 || discOnly.Violations != nil {
		t.Fatalf("discovery-only: %d PFDs, %d violations", len(discOnly.Discovered), len(discOnly.Violations))
	}

	detectOnly := sys.NewSession("p", d.Table, DefaultParams())
	detectOnly.UseRules(discOnly.Discovered)
	if err := detectOnly.RunStages(ctx, StageDetection, StageRepairs); err != nil {
		t.Fatal(err)
	}
	if len(detectOnly.Violations) == 0 {
		t.Fatal("stored-rule detection found nothing on dirty data")
	}

	if err := detectOnly.RunStages(ctx, Stage("bogus")); err == nil {
		t.Error("unknown stage should error")
	}
}

// TestSessionIDsStableAndUnique checks the registry prerequisite.
func TestSessionIDsStableAndUnique(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(50, 0, 51)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		se := sys.NewSession("p", d.Table, DefaultParams())
		if se.ID == "" || seen[se.ID] {
			t.Fatalf("session ID %q not unique/stable", se.ID)
		}
		seen[se.ID] = true
	}
}

// TestConfirmSubsetPreservesDiscovered is the aliasing regression: after
// a full run Confirmed aliases Discovered, and a selective Confirm must
// not overwrite Discovered's backing array.
func TestConfirmSubsetPreservesDiscovered(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(1200, 0.005, 52)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(se.Discovered) < 2 {
		t.Skipf("need ≥2 PFDs, got %d", len(se.Discovered))
	}
	before := make([]string, len(se.Discovered))
	for i, p := range se.Discovered {
		before[i] = p.ID()
	}
	se.Confirm(before[len(before)-1]) // subset confirm after confirm-all
	for i, p := range se.Discovered {
		if p.ID() != before[i] {
			t.Fatalf("Discovered[%d] corrupted: %s, want %s", i, p.ID(), before[i])
		}
	}
}

// TestRunDetectionStatsAndParallelism: RunDetection fills per-rule stats
// and a system configured with parallelism produces identical violations
// and repairs to the sequential default.
func TestRunDetectionStatsAndParallelism(t *testing.T) {
	d := datagen.ZipCity(600, 0.02, 61)
	run := func(par int) *Session {
		cfg := DefaultSystemConfig()
		cfg.Parallelism = par
		se := NewSystemWith(docstore.NewMem(), cfg).NewSession("p", d.Table, DefaultParams())
		if err := se.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return se
	}
	seq := run(1)
	if len(seq.Violations) == 0 {
		t.Fatal("fixture produced no violations")
	}
	rules := seq.Confirmed
	if rules == nil {
		rules = seq.Discovered
	}
	if len(seq.DetectStats) != len(rules) {
		t.Fatalf("DetectStats for %d rules, want %d", len(seq.DetectStats), len(rules))
	}
	for i, st := range seq.DetectStats {
		if st.PFDID != rules[i].ID() || st.Duration < 0 {
			t.Errorf("DetectStats[%d] = %+v", i, st)
		}
	}
	for _, par := range []int{4, 8} {
		got := run(par)
		if !reflect.DeepEqual(got.Violations, seq.Violations) {
			t.Errorf("parallelism %d: violations differ from sequential", par)
		}
		if !reflect.DeepEqual(got.Repairs, seq.Repairs) {
			t.Errorf("parallelism %d: repairs differ from sequential", par)
		}
	}
}

// TestSessionEngineReuseAndStaleness: the session shares one detection
// engine between detection and repairs, and rebuilds it automatically
// when the table is mutated in place (the ApplyRepairs-then-redetect
// flow) — no manual reset required.
func TestSessionEngineReuseAndStaleness(t *testing.T) {
	d := datagen.ZipCity(400, 0.02, 62)
	sys := NewSystem(docstore.NewMem())
	se := sys.NewSession("p", d.Table, DefaultParams())
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if se.det == nil {
		t.Fatal("session should cache its detection engine")
	}
	eng := se.det
	if _, err := se.RunDetection(context.Background()); err != nil {
		t.Fatal(err)
	}
	if se.det != eng {
		t.Error("re-running detection on an unchanged table should reuse the cached engine")
	}
	// Apply the repairs in place and re-detect with NO manual reset:
	// violations covered by repairs disappear only if the stale engine is
	// rebuilt over the mutated table.
	if _, err := detect.Apply(se.Table, se.Repairs); err != nil {
		t.Fatal(err)
	}
	before := len(se.Violations)
	after, err := se.RunDetection(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if se.det == eng {
		t.Error("detection after table mutation should rebuild the engine")
	}
	if len(after) >= before {
		t.Errorf("violations after repair = %d, want < %d", len(after), before)
	}
}

func TestSessionStreamDeltas(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.PhoneState(600, 0.01, 44)
	se := sys.NewSession("p", d.Table, DefaultParams())
	ctx := context.Background()
	if se.DetectionRan() {
		t.Error("DetectionRan before any run")
	}
	if err := se.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if !se.DetectionRan() {
		t.Error("DetectionRan after Run")
	}

	eng, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	// The maintained set matches the session's detected violations.
	if len(eng.Violations()) != len(se.Violations) {
		t.Fatalf("engine %d violations, session %d", len(eng.Violations()), len(se.Violations))
	}
	// The handle is cached while nothing changed.
	again, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if again != eng {
		t.Error("Stream must return the cached engine")
	}

	// A delta flows through and refreshes the session's violations.
	row := se.Table.Row(0)
	row[1] = "ZZ" // wrong state for the phone's area code
	diff, err := se.ApplyDeltas(stream.Batch{stream.AppendRows(row)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) == 0 {
		t.Error("dirty appended row should add violations")
	}
	if len(se.Violations) != len(eng.Violations()) {
		t.Error("ApplyDeltas must refresh session violations")
	}

	// Detection on the untouched-by-detector table agrees with the
	// maintained set, and the engine survives it (no mutation happened).
	vs, err := se.RunDetection(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != len(eng.Violations()) {
		t.Errorf("full detection %d != maintained %d", len(vs), len(eng.Violations()))
	}

	// Repairs route through the stream: the engine stays valid and the
	// diff reports the removals.
	if _, err := se.RunRepairs(ctx); err != nil {
		t.Fatal(err)
	}
	changed, rdiff, err := se.ApplyRepairs(se.Repairs)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 || rdiff == nil {
		t.Fatalf("stream-routed repairs: changed=%d diff=%v", changed, rdiff)
	}
	if len(rdiff.Removed) == 0 {
		t.Error("repairs should remove violations")
	}
	if eng.Stale() {
		t.Error("stream-routed repairs must keep the engine fresh")
	}
	if again, _ := se.Stream(); again != eng {
		t.Error("engine must survive stream-routed repairs")
	}

	// An external mutation (detect.Apply path) makes the engine stale and
	// Stream rebuilds.
	se.Table.SetCell(0, 1, "XX")
	rebuilt, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == eng {
		t.Error("Stream must rebuild after an external table mutation")
	}
}

func TestSessionStreamRequiresRules(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.PhoneState(100, 0, 45)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if _, err := se.Stream(); err == nil {
		t.Error("Stream without rules should fail")
	}
	if _, err := se.ApplyDeltas(stream.Batch{stream.DeleteRows(0)}); err == nil {
		t.Error("ApplyDeltas without rules should fail")
	}
}

func TestApplyRepairsFallbackWithoutStream(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.PhoneState(600, 0.01, 46)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(se.Repairs) == 0 {
		t.Fatal("no repairs on dirty data")
	}
	changed, diff, err := se.ApplyRepairs(se.Repairs)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Error("fallback path should change cells")
	}
	if diff != nil {
		t.Error("fallback path reports no diff")
	}
	// Confirming the identical rule set keeps the cached engine; a real
	// rule-set change (extra rule installed via UseRules) rebuilds it.
	eng, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	se.Confirm(se.Discovered[0].ID())
	if kept, _ := se.Stream(); len(se.Discovered) == 1 && kept != eng {
		t.Error("identical rule set must keep the cached engine")
	}
	extra := pfd.New(se.Table.Name(), "phone", "state", tableau.New(tableau.Row{
		LHS: pattern.MustParseConstrained(`<999>\D{7}`),
		RHS: "ZZ",
	}))
	se.UseRules(append(append([]*pfd.PFD{}, se.Discovered...), extra))
	rebuilt, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == eng {
		t.Error("Stream must rebuild after the rule set changes")
	}
}

func TestStreamRebuildContinuesCursorTimeline(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.PhoneState(400, 0.01, 47)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := se.ApplyDeltas(stream.Batch{stream.AppendRows(se.Table.Row(0))}); err != nil {
		t.Fatal(err)
	}
	old, _ := se.Stream()
	if old.Seq() != 1 {
		t.Fatalf("seq = %d", old.Seq())
	}
	// External mutation forces a rebuild; the replacement continues the
	// timeline so a client cursor from the old engine resets cleanly.
	se.Table.SetCell(0, 1, "XX")
	rebuilt, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == old {
		t.Fatal("expected a rebuild")
	}
	if rebuilt.Seq() != 2 {
		t.Errorf("rebuilt seq = %d, want 2 (old seq + 1)", rebuilt.Seq())
	}
	diff, err := rebuilt.Since(1)
	if err != nil {
		t.Fatalf("old cursor must not error after rebuild: %v", err)
	}
	if !diff.Reset {
		t.Error("old cursor should resolve to a reset snapshot")
	}
}
