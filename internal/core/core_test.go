package core

import (
	"testing"

	"github.com/anmat/anmat/internal/datagen"
	"github.com/anmat/anmat/internal/docstore"
)

func TestPipelineEndToEnd(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	sys.CreateProject("demo")
	if ps := sys.Projects(); len(ps) != 1 || ps[0] != "demo" {
		t.Fatalf("Projects = %v", ps)
	}

	d := datagen.ZipCity(1500, 0.005, 42)
	se := sys.NewSession("demo", d.Table, DefaultParams())
	if err := se.Run(); err != nil {
		t.Fatal(err)
	}
	if len(se.Profile.Columns) != 3 {
		t.Errorf("profile columns = %d", len(se.Profile.Columns))
	}
	if len(se.Discovered) == 0 {
		t.Fatal("no PFDs discovered")
	}
	if len(se.Violations) == 0 {
		t.Fatal("no violations on dirty data")
	}
	if len(se.Repairs) == 0 {
		t.Fatal("no repairs suggested")
	}

	// Results were persisted.
	if sys.Store().Count(CollPFDs, nil) == 0 {
		t.Error("PFDs not stored")
	}
	if sys.Store().Count(CollViolations, nil) == 0 {
		t.Error("violations not stored")
	}
	if sys.Store().Count(CollProfiles, nil) != 1 {
		t.Error("profile not stored")
	}
}

func TestDetectionFindsInjectedErrors(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.PhoneState(3000, 0.005, 43)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if err := se.Run(); err != nil {
		t.Fatal(err)
	}
	flagged := map[int]bool{}
	for _, v := range se.Violations {
		for _, tu := range v.Tuples {
			flagged[tu] = true
		}
	}
	injected := d.InjectedRows()
	caught := 0
	for r := range injected {
		if flagged[r] {
			caught++
		}
	}
	if len(injected) == 0 {
		t.Fatal("no injected errors to find")
	}
	recall := float64(caught) / float64(len(injected))
	if recall < 0.9 {
		t.Errorf("recall = %.2f (%d/%d)", recall, caught, len(injected))
	}
}

func TestConfirmSubset(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(1200, 0.005, 44)
	se := sys.NewSession("p", d.Table, DefaultParams())
	se.RunProfile()
	if _, err := se.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	if len(se.Discovered) < 2 {
		t.Skipf("need ≥2 PFDs, got %d", len(se.Discovered))
	}
	only := se.Discovered[0].ID()
	got := se.Confirm(only)
	if len(got) != 1 || got[0].ID() != only {
		t.Fatalf("Confirm(%s) = %v", only, got)
	}
	vs, err := se.RunDetection()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.PFDID != only {
			t.Errorf("violation from unconfirmed PFD %s", v.PFDID)
		}
	}
}

func TestConfirmAllByDefault(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(800, 0, 45)
	se := sys.NewSession("p", d.Table, DefaultParams())
	if _, err := se.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	if got := se.Confirm(); len(got) != len(se.Discovered) {
		t.Errorf("Confirm() = %d, want all %d", len(got), len(se.Discovered))
	}
}

func TestRunDMV(t *testing.T) {
	sys := NewSystem(docstore.NewMem())
	d := datagen.ZipCity(600, 0, 47)
	zi, _ := d.Table.ColIndex("zip")
	for r := 0; r < d.Table.NumRows(); r += 60 {
		d.Table.SetCell(r, zi, "N/A")
	}
	se := sys.NewSession("p", d.Table, DefaultParams())
	findings := se.RunDMV()
	if len(findings) == 0 {
		t.Fatal("no DMV findings")
	}
	found := false
	for _, f := range findings {
		if f.Column == "zip" {
			for _, s := range f.Suspects {
				if s.Value == "N/A" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("N/A not flagged: %+v", findings)
	}
	if sys.Store().Count("dmv_findings", nil) == 0 {
		t.Error("findings not stored")
	}
	// Re-running replaces, not duplicates, the in-session findings.
	if got := se.RunDMV(); len(got) != len(findings) {
		t.Errorf("re-run findings = %d, want %d", len(got), len(findings))
	}
}

func TestLoadPFDsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/store.json"
	store, err := docstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(store)
	d := datagen.ZipCity(1000, 0.01, 46)

	// Session 1: discover and persist.
	se := sys.NewSession("p", d.Table, DefaultParams())
	if _, err := se.RunDiscovery(); err != nil {
		t.Fatal(err)
	}
	if len(se.Discovered) == 0 {
		t.Fatal("nothing discovered")
	}
	wantViolations, err := se.RunDetection()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	// Session 2 (fresh store handle): reload rules and re-detect without
	// discovery.
	store2, err := docstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(store2)
	loaded, err := sys2.LoadPFDs(d.Table.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(se.Discovered) {
		t.Fatalf("loaded %d PFDs, stored %d", len(loaded), len(se.Discovered))
	}
	se2 := sys2.NewSession("p", d.Table, DefaultParams())
	se2.UseRules(loaded)
	got, err := se2.RunDetection()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantViolations) {
		t.Errorf("reloaded rules found %d violations, original %d", len(got), len(wantViolations))
	}

	// Filter by table name.
	none, err := sys2.LoadPFDs("not-a-table")
	if err != nil || len(none) != 0 {
		t.Errorf("LoadPFDs(bogus) = %d, %v", len(none), err)
	}
	all, err := sys2.LoadPFDs("")
	if err != nil || len(all) != len(loaded) {
		t.Errorf("LoadPFDs(all) = %d, %v", len(all), err)
	}
}

func TestLoadPFDsCorruptDoc(t *testing.T) {
	store := docstore.NewMem()
	store.Insert(CollPFDs, docstore.Doc{"table": "t", "tableau": []any{map[string]any{"lhs": "<\\L", "rhs": "x"}}})
	sys := NewSystem(store)
	if _, err := sys.LoadPFDs("t"); err == nil {
		t.Error("corrupt stored PFD should error")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.MinCoverage <= 0 || p.MinCoverage >= 1 {
		t.Errorf("MinCoverage = %f", p.MinCoverage)
	}
	if p.AllowedViolations < 0 || p.AllowedViolations >= 1 {
		t.Errorf("AllowedViolations = %f", p.AllowedViolations)
	}
}
