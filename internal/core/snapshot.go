// Session durability hooks: the snapshot/restore surface the persistence
// layer (internal/persist) builds on. A SessionSnapshot is everything
// needed to rebuild an equivalent session — table bytes, parameters, rule
// sets, detection state, and the stream-engine sequence cursor — and a
// Persister is the sink sessions journal their delta batches into.
//
// The division of labor: core decides *when* to checkpoint and journal
// (on engine rebuilds, after delta batches, when compaction is due); the
// Persister decides *how* bytes become durable. Violations are not
// snapshotted — they are a pure function of (table, rules), so restore
// recomputes them by bootstrapping the incremental engine, and the
// crash-recovery tests assert the result is byte-identical to a fresh
// full detection.
package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/table"
)

// SessionSnapshot is the durable image of one session at a checkpoint.
// It marshals to JSON (TableData travels base64-encoded), which is how
// the persistence layer stores it in the document store.
type SessionSnapshot struct {
	ID      string `json:"session"`
	Project string `json:"project"`
	Params  Params `json:"params"`
	// TableName duplicates the encoded table's name for filterability.
	TableName string `json:"table"`
	// TableData is the binary table snapshot (table.EncodeBinaryBytes).
	TableData []byte `json:"table_data"`
	// Discovered and Confirmed are the session's rule sets. ConfirmedSet
	// distinguishes "nothing explicitly confirmed" (nil — detection runs
	// over Discovered) from "confirmed an empty set".
	Discovered   []*pfd.PFD `json:"discovered,omitempty"`
	Confirmed    []*pfd.PFD `json:"confirmed,omitempty"`
	ConfirmedSet bool       `json:"confirmed_set"`
	// Detected records whether detection ever ran; restore only rebuilds
	// the violation set (via the stream engine) when it did.
	Detected bool `json:"detected"`
	// Seq is the stream engine's sequence cursor at checkpoint time (0
	// when no engine exists). WAL records at or below it are already
	// folded into TableData and are skipped on replay.
	Seq int64 `json:"seq"`
	// Shards is the session's resolved shard count at checkpoint time
	// (>= 1), so recovery rebuilds the same engine topology — a sharded
	// session journals into per-shard WALs, and its coordinator is
	// rebuilt shard by shard and re-merged.
	Shards int `json:"shards,omitempty"`
}

// PersistenceError marks a durability-layer failure — journaling or
// checkpointing — as opposed to a rejection of the caller's input. API
// layers use it to map errors to server-side (5xx) rather than
// bad-request statuses; errors.As unwraps through the pipeline's
// wrapping.
type PersistenceError struct {
	Err error
}

func (e *PersistenceError) Error() string { return e.Err.Error() }
func (e *PersistenceError) Unwrap() error { return e.Err }

// Persister is the durability sink a session reports to. Implementations
// must be safe for concurrent use by distinct sessions.
type Persister interface {
	// Journal durably appends one delta batch before the session applies
	// it (write-ahead). An error aborts the batch.
	Journal(ctx context.Context, sessionID string, seq int64, batch stream.Batch) error
	// JournalSharded durably appends one delta batch to each of the
	// session's k per-shard journals before the session applies it — a
	// k-way replicated write-ahead record, so recovery can read the
	// batch from any shard's WAL whose tail survived the crash intact.
	// An error aborts the batch.
	JournalSharded(ctx context.Context, sessionID string, k int, seq int64, batch stream.Batch) error
	// Checkpoint durably replaces the session's snapshot and resets its
	// journal to empty.
	Checkpoint(snap *SessionSnapshot) error
	// CompactionDue reports whether the session's journal has grown past
	// the compaction threshold since its last checkpoint.
	CompactionDue(sessionID string) bool
}

// SetPersist attaches a durability sink to the session: future delta
// batches are journaled write-ahead, and engine rebuilds checkpoint a
// fresh baseline. An existing engine is wired up immediately. Pass nil to
// detach.
func (se *Session) SetPersist(p Persister) {
	se.persist = p
	if se.str != nil {
		se.str.SetSink(se.journalSink())
	}
}

// journalSink adapts the session's persister to the engine's write-ahead
// hook. Sharded sessions journal each batch into k per-shard WALs (one
// replicated record per shard); single-engine sessions keep the one
// session WAL.
func (se *Session) journalSink() func(context.Context, int64, stream.Batch) error {
	if se.persist == nil {
		return nil
	}
	id, p, k := se.ID, se.persist, se.Shards()
	return func(ctx context.Context, seq int64, batch stream.Batch) error {
		var err error
		if k > 1 {
			err = p.JournalSharded(ctx, id, k, seq, batch)
		} else {
			err = p.Journal(ctx, id, seq, batch)
		}
		if err != nil {
			return &PersistenceError{Err: err}
		}
		return nil
	}
}

// Snapshot captures the session's durable state. The caller must hold the
// session's external lock (sessions are not safe for concurrent use), so
// the table bytes and the engine cursor are mutually consistent.
func (se *Session) Snapshot() (*SessionSnapshot, error) {
	data, err := se.Table.EncodeBinaryBytes()
	if err != nil {
		return nil, fmt.Errorf("session %s: snapshot table: %w", se.ID, err)
	}
	snap := &SessionSnapshot{
		ID:           se.ID,
		Project:      se.Project,
		Params:       se.Params,
		TableName:    se.Table.Name(),
		TableData:    data,
		Discovered:   se.Discovered,
		Confirmed:    se.Confirmed,
		ConfirmedSet: se.Confirmed != nil,
		Detected:     se.detected,
		Shards:       se.Shards(),
	}
	if se.str != nil {
		snap.Seq = se.str.Seq()
		if se.str.Stale() || !samePFDs(se.strRules, se.rules()) {
			// The engine no longer describes the session (rules changed,
			// or the table was mutated outside it): a live rebuild would
			// start one past its timeline, and the snapshot must agree —
			// otherwise a recovered engine sits AT the old head seq and a
			// client cursor there resolves to an empty diff instead of
			// the reset the live server would return.
			snap.Seq++
		}
	}
	if se.strNextBase > snap.Seq {
		snap.Seq = se.strNextBase
	}
	return snap, nil
}

// Checkpoint snapshots the session into its persister. It is a no-op
// without one, so callers can invoke it unconditionally at natural
// checkpoints (pipeline completion, rule confirmation).
func (se *Session) Checkpoint() error {
	if se.persist == nil {
		return nil
	}
	snap, err := se.Snapshot()
	if err != nil {
		return err
	}
	if err := se.persist.Checkpoint(snap); err != nil {
		return &PersistenceError{Err: fmt.Errorf("session %s: checkpoint: %w", se.ID, err)}
	}
	return nil
}

// RestoreSession rebuilds a session from a snapshot: table, parameters,
// rule sets, and detection flag, with the original session ID adopted
// into the system's ID sequence so future sessions never collide. The
// violation set and stream engine are NOT rebuilt here — call
// ReplayJournal with the WAL tail (possibly empty) to finish recovery.
func (s *System) RestoreSession(snap *SessionSnapshot) (*Session, error) {
	t, err := table.DecodeBinaryBytes(snap.TableData)
	if err != nil {
		return nil, fmt.Errorf("restore session %s: %w", snap.ID, err)
	}
	se := &Session{
		sys:      s,
		ID:       snap.ID,
		Project:  snap.Project,
		Table:    t,
		Params:   snap.Params,
		detected: snap.Detected,
		shards:   snap.Shards,
	}
	se.Discovered = snap.Discovered
	if snap.ConfirmedSet {
		se.Confirmed = realias(snap.Confirmed, snap.Discovered)
	}
	s.adoptID(snap.ID)
	return se, nil
}

// realias maps confirmed rules back onto the discovered pointers with the
// same ID, restoring the aliasing invariant live sessions have (Confirm
// selects a subset of Discovered); rules with no discovered counterpart
// (installed via UseRules) are kept as deserialized.
func realias(confirmed, discovered []*pfd.PFD) []*pfd.PFD {
	if confirmed == nil {
		return []*pfd.PFD{}
	}
	byID := make(map[string]*pfd.PFD, len(discovered))
	for _, p := range discovered {
		byID[p.ID()] = p
	}
	out := make([]*pfd.PFD, len(confirmed))
	for i, p := range confirmed {
		if d, ok := byID[p.ID()]; ok {
			out[i] = d
		} else {
			out[i] = p
		}
	}
	return out
}

// adoptID advances the session-ID sequence past a restored "s<n>" ID.
func (s *System) adoptID(id string) {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "s"), 10, 64)
	if err != nil {
		return
	}
	for {
		cur := s.seq.Load()
		if cur >= n || s.seq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// ReplayJournal finishes recovery: it bootstraps the incremental engine
// over the restored table at the checkpoint's sequence cursor — the
// shard coordinator, rebuilt shard by shard and re-merged, when the
// snapshot was sharded — which recomputes the violation set,
// byte-identical to a full detection — and replays the journaled delta
// batches through it in order, restoring the sequence timeline so
// pre-crash `since` cursors resolve. Sessions that never ran detection
// skip the engine entirely and must have an empty journal.
func (se *Session) ReplayJournal(baseSeq int64, batches []stream.Batch) error {
	rules := se.rules()
	if !se.detected {
		if len(batches) > 0 {
			return fmt.Errorf("session %s: %d journaled batches but detection never ran (corrupt persistence state)", se.ID, len(batches))
		}
		return nil
	}
	if len(rules) == 0 {
		// Detection over zero mined rules is a legitimate state (zero
		// violations, no stream engine possible — so nothing can have
		// been journaled). Only a non-empty journal marks corruption.
		if len(batches) > 0 {
			return fmt.Errorf("session %s: %d journaled batches but no rules were snapshotted (corrupt persistence state)", se.ID, len(batches))
		}
		se.Violations = nil
		return nil
	}
	eng, err := se.newStreamer(rules, baseSeq)
	if err != nil {
		return fmt.Errorf("session %s: replay: %w", se.ID, err)
	}
	for i, b := range batches {
		if _, err := eng.Replay(b); err != nil {
			return fmt.Errorf("session %s: replay batch %d (seq %d): %w", se.ID, i, baseSeq+int64(i)+1, err)
		}
	}
	se.str, se.strRules = eng, rules
	se.Violations = eng.Violations()
	return nil
}
