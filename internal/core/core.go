// Package core orchestrates the ANMAT system: project and dataset
// management over the document store, and the Profile → Discover →
// Confirm → Detect → Repair pipeline the demo walks through (Section 4).
//
// Every Session carries a stable ID so callers (the HTTP server, future
// shard routers) can address it after creation, and every pipeline entry
// point takes a context.Context: cancellation is checked between stages
// and inside the discovery candidate loop.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/anmat/anmat/internal/cluster"
	"github.com/anmat/anmat/internal/detect"
	"github.com/anmat/anmat/internal/discovery"
	"github.com/anmat/anmat/internal/dmv"
	"github.com/anmat/anmat/internal/docstore"
	"github.com/anmat/anmat/internal/obs"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/profile"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/table"
)

// Params are the two user inputs of Section 4 ("Anmat accepts two user
// input parameters"): the minimum coverage and the ratio of allowed
// violations.
type Params struct {
	// MinCoverage is γ.
	MinCoverage float64 `json:"min_coverage"`
	// AllowedViolations is ρ, the tolerated violation ratio per rule.
	AllowedViolations float64 `json:"allowed_violations"`
}

// DefaultParams mirrors discovery.Default.
func DefaultParams() Params {
	d := discovery.Default()
	return Params{MinCoverage: d.MinCoverage, AllowedViolations: d.MaxViolationRatio}
}

// SystemConfig carries system-wide defaults applied to every new session.
type SystemConfig struct {
	// Params are the default user parameters for sessions created without
	// explicit ones.
	Params Params
	// Discovery is the base discovery configuration; per-session Params
	// overlay its MinCoverage/MaxViolationRatio.
	Discovery discovery.Config
	// Parallelism bounds the per-session worker count across the whole
	// pipeline — discovery candidates (unless Discovery.Parallelism is
	// set explicitly) and the detection/repair engine (0 = GOMAXPROCS).
	// Output is identical at every setting; see detect.DetectAllContext.
	Parallelism int
	// Shards is the default shard count of every session's incremental
	// detection engine (0 or 1 = one engine, no sharding). With K > 1 the
	// session's table is hash-partitioned on block keys across K
	// per-shard engines (see internal/shard); results are byte-identical
	// at every K. Per-session SessionConfig.Shards overrides it.
	Shards int
	// Workers, when non-empty, runs every session's incremental engine in
	// distributed mode: one shard per worker base URL, driven over the
	// /shard/v1 HTTP API (see internal/cluster). Takes precedence over
	// Shards; results stay byte-identical at any worker count.
	// Per-session SessionConfig.Workers overrides it.
	//
	// A worker holds exactly one shard state, so a worker set serves
	// exactly one distributed session: the first session to build its
	// engine claims the endpoints for the system's lifetime, and any
	// other session configured over a claimed endpoint fails to build its
	// engine with a clear error. To run several distributed sessions,
	// give each (via SessionConfig.Workers) a disjoint worker set.
	Workers []string
	// ClusterSpares are standby worker base URLs distributed sessions
	// fail over to when a primary stops answering. They form one shared
	// system-level pool with claim-once semantics: a spare consumed by
	// one session's failover is never handed to another.
	ClusterSpares []string
	// ClusterDir is the directory of distributed sessions' failover
	// stores (snapshot + K-way replicated WAL); each session uses a
	// subdirectory keyed by its ID. "" keeps per-session temporary
	// directories.
	ClusterDir string
}

// DefaultSystemConfig returns the demo defaults.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{Params: DefaultParams(), Discovery: discovery.Default()}
}

// System is the ANMAT engine bound to a document store.
type System struct {
	store *docstore.Store
	cfg   SystemConfig
	seq   atomic.Int64 // session ID sequence

	// cmu guards the cluster endpoint bookkeeping below.
	cmu sync.Mutex
	// workerClaims maps each claimed worker endpoint to the session
	// holding it. A worker carries exactly one shard state, so two
	// sessions sharing an endpoint would silently clobber each other;
	// claims are taken when a distributed session builds its engine and
	// last for the system's lifetime.
	workerClaims map[string]string
	// clusterSpares is the shared failover pool seeded from
	// SystemConfig.ClusterSpares; each endpoint is handed out at most
	// once across all sessions.
	clusterSpares []string
}

// NewSystem builds a system over the store with default configuration
// (use docstore.NewMem for ephemeral sessions).
func NewSystem(store *docstore.Store) *System {
	return NewSystemWith(store, DefaultSystemConfig())
}

// NewSystemWith builds a system with explicit defaults. A zero-value
// Discovery config is replaced by discovery.Default(); a config with any
// field set is taken verbatim.
func NewSystemWith(store *docstore.Store, cfg SystemConfig) *System {
	if cfg.Discovery.IsZero() {
		cfg.Discovery = discovery.Default()
	}
	// Params are taken verbatim — zero values are a legitimate request
	// for no coverage floor / zero tolerated violations.
	return &System{
		store:         store,
		cfg:           cfg,
		workerClaims:  make(map[string]string),
		clusterSpares: append([]string(nil), cfg.ClusterSpares...),
	}
}

// claimWorkers reserves the worker endpoints for one session, erroring
// when any is already held by another: a worker holds exactly one shard
// state, so sharing it across sessions would silently replace the first
// session's state (see SystemConfig.Workers). Re-claiming by the same
// session (an engine rebuild) is a no-op.
func (s *System) claimWorkers(sessionID string, endpoints []string) error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	for _, ep := range endpoints {
		if owner, ok := s.workerClaims[ep]; ok && owner != sessionID {
			return fmt.Errorf("worker %s already serves session %s's shards; distributed sessions need disjoint worker sets", ep, owner)
		}
	}
	for _, ep := range endpoints {
		s.workerClaims[ep] = sessionID
	}
	return nil
}

// claimSpare hands one standby endpoint from the shared failover pool to
// the session, or "" when none is left. Each spare is claimed at most
// once across all sessions, so two failing-over sessions can never
// restore conflicting shard states onto the same endpoint.
func (s *System) claimSpare(sessionID string) string {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	for len(s.clusterSpares) > 0 {
		ep := s.clusterSpares[0]
		s.clusterSpares = s.clusterSpares[1:]
		if owner, ok := s.workerClaims[ep]; ok && owner != sessionID {
			continue // listed both as a primary and a spare; already taken
		}
		s.workerClaims[ep] = sessionID
		return ep
	}
	return ""
}

// Store exposes the underlying document store.
func (s *System) Store() *docstore.Store { return s.store }

// Defaults returns the system-wide default session parameters.
func (s *System) Defaults() Params { return s.cfg.Params }

// Collections used by the system.
const (
	CollProjects   = "projects"
	CollPFDs       = "pfds"
	CollViolations = "violations"
	CollProfiles   = "profiles"
)

// CreateProject registers a project ("new users can create their own
// projects") and returns its id.
func (s *System) CreateProject(name string) int64 {
	return s.store.Insert(CollProjects, docstore.Doc{"name": name})
}

// Projects lists the registered project names.
func (s *System) Projects() []string {
	docs := s.store.Find(CollProjects, nil)
	out := make([]string, 0, len(docs))
	for _, d := range docs {
		if n, ok := d["name"].(string); ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// LoadPFDs retrieves previously stored PFDs for a table from the document
// store — the demo's flow of reloading rules mined in an earlier session
// instead of re-running discovery. Filters by table name; pass "" for all.
func (s *System) LoadPFDs(tableName string) ([]*pfd.PFD, error) {
	var f docstore.Filter
	if tableName != "" {
		f = docstore.Filter{"table": tableName}
	}
	docs := s.store.Find(CollPFDs, f)
	out := make([]*pfd.PFD, 0, len(docs))
	for _, d := range docs {
		b, err := json.Marshal(d)
		if err != nil {
			return nil, err
		}
		var p pfd.PFD
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("load pfd %v: %w", d[docstore.IDField], err)
		}
		out = append(out, &p)
	}
	return out, nil
}

// Session is one dataset loaded into a project, carrying the pipeline's
// intermediate products. A Session is not safe for concurrent use;
// callers that share one (e.g. the HTTP server) must guard it. Distinct
// sessions are independent and may run concurrently.
type Session struct {
	sys *System
	// ID is the stable identifier assigned at creation; it addresses the
	// session in registries and the versioned HTTP API.
	ID      string
	Project string
	Table   *table.Table
	Params  Params
	// Discovery, when non-nil, overrides the system's base discovery
	// configuration for this session (Params still overlay coverage and
	// violation ratio).
	Discovery *discovery.Config

	Profile    profile.TableProfile
	Discovered []*pfd.PFD
	Confirmed  []*pfd.PFD
	Violations []pfd.Violation
	Repairs    []detect.Repair
	Stats      []discovery.CandidateStats
	// DetectStats records, per confirmed rule, how long detection took
	// and how many violations it contributed (filled by RunDetection).
	DetectStats []detect.RuleStats
	DMVs        []DMVFinding

	// det is the session's lazily built detection engine, shared between
	// RunDetection and RunRepairs so each column index is built once per
	// session rather than once per stage (see Session.engine).
	det *detect.Detector

	// detected records whether detection has run at least once, so API
	// layers can distinguish "zero violations" from "never detected".
	detected bool

	// shards, when > 0, overrides the system's default shard count for
	// this session's incremental engine (see SessionConfig.Shards).
	shards int

	// workers, when non-empty, overrides the system's default worker list
	// for this session's incremental engine (see SessionConfig.Workers).
	workers []string

	// str is the session's lazily built incremental detection engine —
	// a single stream.Engine, or a shard.Coordinator when the session is
	// sharded (see Session.Stream); strRules snapshots the rule set it
	// was built over so a Confirm/UseRules change triggers a rebuild.
	str      Streamer
	strRules []*pfd.PFD
	// strNextBase carries the sequence base of an engine whose baseline
	// checkpoint failed, so the retry rebuild continues the same timeline
	// instead of restarting cursors at zero.
	strNextBase int64

	// persist, when set, is the session's durability sink: delta batches
	// are journaled write-ahead through the engine sink, and engine
	// rebuilds checkpoint a fresh baseline (see snapshot.go).
	persist Persister
}

// NewSession binds a table to a project with the given parameters
// (stored verbatim — use System.Defaults for the system-wide ones) and
// assigns a stable session ID.
func (s *System) NewSession(project string, t *table.Table, p Params) *Session {
	id := fmt.Sprintf("s%d", s.seq.Add(1))
	return &Session{sys: s, ID: id, Project: project, Table: t, Params: p}
}

// SessionConfig is the full per-session configuration of NewSessionWith.
type SessionConfig struct {
	// Params are the session's user parameters (see Params).
	Params Params
	// Shards overrides the system default shard count for this session's
	// incremental detection engine: 0 inherits SystemConfig.Shards, 1
	// forces a single engine, K > 1 partitions the table across K
	// per-shard engines with byte-identical results.
	Shards int
	// Workers overrides the system default worker list for this session's
	// incremental detection engine: nil inherits SystemConfig.Workers, a
	// non-empty list runs one shard per worker over HTTP (internal/cluster)
	// with byte-identical results.
	Workers []string
	// Discovery, when non-nil, overrides the system's base discovery
	// configuration for this session.
	Discovery *discovery.Config
}

// NewSessionWith is NewSession with the full per-session configuration.
func (s *System) NewSessionWith(project string, t *table.Table, cfg SessionConfig) *Session {
	se := s.NewSession(project, t, cfg.Params)
	se.shards = cfg.Shards
	se.workers = cfg.Workers
	se.Discovery = cfg.Discovery
	return se
}

// Shards resolves the session's effective shard count: the worker count
// in distributed mode, else the per-session override when set, else the
// system default, and never below 1.
func (se *Session) Shards() int {
	if w := se.Workers(); len(w) > 0 {
		return len(w)
	}
	k := se.shards
	if k == 0 {
		k = se.sys.cfg.Shards
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Workers resolves the session's effective worker list: the per-session
// override when set, the system default otherwise. Empty means the
// engine runs in-process.
func (se *Session) Workers() []string {
	if len(se.workers) > 0 {
		return se.workers
	}
	return se.sys.cfg.Workers
}

// discoveryConfig resolves the effective discovery configuration: the
// session override (or the system base) with the session Params overlaid.
// SystemConfig.Parallelism is the one pipeline-wide worker knob, so
// discovery inherits it unless the discovery config sets its own.
func (se *Session) discoveryConfig() discovery.Config {
	cfg := se.sys.cfg.Discovery
	if se.Discovery != nil {
		cfg = *se.Discovery
	}
	cfg.MinCoverage = se.Params.MinCoverage
	cfg.MaxViolationRatio = se.Params.AllowedViolations
	if cfg.Parallelism == 0 {
		cfg.Parallelism = se.sys.cfg.Parallelism
	}
	return cfg
}

// Stage names one composable step of the pipeline.
type Stage string

// The pipeline stages, in canonical order.
const (
	StageProfile   Stage = "profile"
	StageDMV       Stage = "dmv"
	StageDiscovery Stage = "discovery"
	StageConfirm   Stage = "confirm" // confirm every discovered PFD
	StageDetection Stage = "detection"
	StageRepairs   Stage = "repairs"
)

// FullPipeline is the stage list Run executes: the demo's end-to-end flow
// (DMV scanning stays on demand, as in the GUI).
func FullPipeline() []Stage {
	return []Stage{StageProfile, StageDiscovery, StageConfirm, StageDetection, StageRepairs}
}

// RunStages executes the given stages in order, checking ctx between
// stages. This is the composition point for partial flows: profile-only
// (StageProfile), discovery-only (StageProfile, StageDiscovery), or
// detect-with-stored-rules (UseRules then StageDetection, StageRepairs).
func (se *Session) RunStages(ctx context.Context, stages ...Stage) error {
	for _, st := range stages {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("session %s: stage %s: %w", se.ID, st, err)
		}
		end := obs.Span(ctx, "stage."+string(st))
		var err error
		switch st {
		case StageProfile:
			se.RunProfile()
		case StageDMV:
			se.RunDMV()
		case StageDiscovery:
			_, err = se.RunDiscovery(ctx)
		case StageConfirm:
			se.Confirm()
		case StageDetection:
			_, err = se.RunDetection(ctx)
		case StageRepairs:
			_, err = se.RunRepairs(ctx)
		default:
			err = fmt.Errorf("unknown pipeline stage %q", st)
		}
		end()
		if err != nil {
			return err
		}
	}
	return nil
}

// RunProfile computes and stores the table profile (the Figure 3 step:
// "the system will automatically profile the dataset").
func (se *Session) RunProfile() profile.TableProfile {
	se.Profile = profile.Profile(se.Table)
	doc := docstore.Doc{
		"session": se.ID,
		"project": se.Project,
		"table":   se.Table.Name(),
		"rows":    se.Profile.Rows,
		"columns": len(se.Profile.Columns),
	}
	se.sys.store.Insert(CollProfiles, doc)
	return se.Profile
}

// DMVFinding pairs a column with its suspected disguised missing values.
type DMVFinding struct {
	Column   string        `json:"column"`
	Suspects []dmv.Suspect `json:"suspects"`
}

// RunDMV scans every column for disguised missing values; findings are
// kept on the session and stored. It does not modify the table — use
// discovery.Config.CleanDMVs to exclude them from mining.
func (se *Session) RunDMV() []DMVFinding {
	se.DMVs = se.DMVs[:0]
	for i, col := range se.Table.Columns() {
		suspects := dmv.Detect(se.Table.ColumnByIndex(i), dmv.Options{})
		if len(suspects) == 0 {
			continue
		}
		se.DMVs = append(se.DMVs, DMVFinding{Column: col, Suspects: suspects})
	}
	for _, f := range se.DMVs {
		_, _ = se.sys.store.InsertJSON("dmv_findings", f)
	}
	return se.DMVs
}

// RunDiscovery mines PFDs with the session parameters and stores them.
// Cancelling ctx aborts mining mid-candidate with an error wrapping
// context.Canceled.
func (se *Session) RunDiscovery(ctx context.Context) ([]*pfd.PFD, error) {
	res, err := discovery.DiscoverContext(ctx, se.Table, se.discoveryConfig())
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", se.ID, err)
	}
	se.Discovered = res.PFDs
	se.Stats = res.Stats
	for _, p := range res.PFDs {
		if _, err := se.sys.store.InsertJSON(CollPFDs, p); err != nil {
			return nil, fmt.Errorf("store pfd %s: %w", p.ID(), err)
		}
	}
	return res.PFDs, nil
}

// Confirm marks a subset of the discovered PFDs as validated by the user
// ("the user … can display the tableau of each dependency and confirm
// whether that discovered dependency is valid"). Passing no ids confirms
// everything.
func (se *Session) Confirm(ids ...string) []*pfd.PFD {
	if len(ids) == 0 {
		se.Confirmed = se.Discovered
		return se.Confirmed
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	// Build a fresh slice: after a full run Confirmed aliases Discovered,
	// and appending into Confirmed[:0] would overwrite Discovered's
	// backing array.
	confirmed := make([]*pfd.PFD, 0, len(ids))
	for _, p := range se.Discovered {
		if want[p.ID()] {
			confirmed = append(confirmed, p)
		}
	}
	se.Confirmed = confirmed
	return se.Confirmed
}

// UseRules installs externally obtained PFDs (e.g. loaded from the store
// via System.LoadPFDs) as the session's confirmed rule set, bypassing
// discovery.
func (se *Session) UseRules(ps []*pfd.PFD) {
	se.Confirmed = ps
}

// engine returns the session's detection engine, built lazily and shared
// between detection and repairs so column indexes are built once per
// session rather than once per stage. A table mutated since the engine
// was built (e.g. repairs applied in place via detect.Apply) bumps the
// table version, so the engine is rebuilt here rather than serving stale
// indexes. The table must still not be mutated concurrently with a
// running detection.
func (se *Session) engine() *detect.Detector {
	if se.det == nil || se.det.Stale() {
		se.det = detect.New(se.Table, detect.Options{})
	}
	return se.det
}

// rules returns the active rule set: the confirmed PFDs, or every
// discovered one when none were explicitly confirmed.
func (se *Session) rules() []*pfd.PFD {
	if se.Confirmed != nil {
		return se.Confirmed
	}
	return se.Discovered
}

// RunDetection evaluates the confirmed PFDs (all discovered ones when
// none were explicitly confirmed) with the system's parallelism and
// stores the violations. Per-rule timing lands in DetectStats.
// Cancelling ctx stops the engine between tableau-row batches.
func (se *Session) RunDetection(ctx context.Context) ([]pfd.Violation, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("session %s: detection: %w", se.ID, err)
	}
	res, err := se.engine().DetectAllContext(ctx, se.rules(), se.sys.cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", se.ID, err)
	}
	se.Violations = res.Violations
	se.DetectStats = res.Stats
	se.detected = true
	// One batched append for the whole run's violations: a single store
	// lock acquisition instead of one per violation.
	vals := make([]any, len(res.Violations))
	for i, v := range res.Violations {
		vals[i] = v
	}
	if _, err := se.sys.store.InsertJSONBatch(CollViolations, vals); err != nil {
		return nil, err
	}
	return res.Violations, nil
}

// RunRepairs derives repair suggestions from the confirmed PFDs with the
// system's parallelism, checking ctx between rule batches.
func (se *Session) RunRepairs(ctx context.Context) ([]detect.Repair, error) {
	out, err := se.engine().RepairsAllContext(ctx, se.rules(), se.sys.cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", se.ID, err)
	}
	se.Repairs = out
	return out, nil
}

// Run executes the whole pipeline: profile, discovery, detection, repair
// suggestions (confirming every discovered PFD). Cancelling ctx aborts
// between stages and mid-discovery with an error wrapping ctx.Err().
func (se *Session) Run(ctx context.Context) error {
	return se.RunStages(ctx, FullPipeline()...)
}

// DetectionRan reports whether detection has run on this session at
// least once — the difference between "zero violations" and "never
// looked", which the HTTP layer surfaces as a 409.
func (se *Session) DetectionRan() bool { return se.detected }

// samePFDs reports whether two rule slices hold the same rules in the
// same order (pointer identity: sessions share *pfd.PFD values).
func samePFDs(a, b []*pfd.PFD) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Streamer is the incremental-detection surface shared by the single
// stream.Engine and the sharded shard.Coordinator: apply (or replay)
// delta batches, read the maintained violation set, and resolve sequence
// cursors. Session.Stream returns one or the other depending on the
// session's shard count; everything downstream — the HTTP API, the CLI
// follow mode, the durability layer — programs against this surface.
type Streamer interface {
	Apply(stream.Batch) (*stream.Diff, error)
	// ApplyCtx is Apply carrying the caller's context so the engine's
	// spans (apply, journal, fan-out, RPC) join the request's trace.
	ApplyCtx(context.Context, stream.Batch) (*stream.Diff, error)
	Replay(stream.Batch) (*stream.Diff, error)
	Violations() []pfd.Violation
	Since(int64) (*stream.Diff, error)
	Seq() int64
	Stale() bool
	SetSink(func(context.Context, int64, stream.Batch) error)
	Rules() []*pfd.PFD
}

// newStreamer builds the session's incremental engine over the given
// rules at the given base sequence: a cluster coordinator when worker
// endpoints are configured, a shard coordinator when the session is
// sharded in-process, a single stream engine otherwise. Output is
// byte-identical in all three modes.
func (se *Session) newStreamer(rules []*pfd.PFD, base int64) (Streamer, error) {
	if w := se.Workers(); len(w) > 0 {
		// A worker set serves one session: claim the endpoints (for the
		// system's lifetime) so a second distributed session cannot boot
		// over them and clobber this one's shard state.
		if err := se.sys.claimWorkers(se.ID, w); err != nil {
			return nil, err
		}
		dir := ""
		if d := se.sys.cfg.ClusterDir; d != "" {
			dir = filepath.Join(d, se.ID)
		}
		return cluster.New(se.Table, rules, w, cluster.Options{
			BaseSeq: base,
			Dir:     dir,
			// Spares come from the system's shared claim-once pool rather
			// than a per-coordinator copy, so two failing-over sessions can
			// never restore conflicting states onto the same spare.
			Respawn: func(int) string { return se.sys.claimSpare(se.ID) },
		})
	}
	if k := se.Shards(); k > 1 {
		return shard.NewFrom(se.Table, rules, k, base)
	}
	return stream.NewEngineFrom(se.Table, rules, base)
}

// Stream returns the session's incremental detection engine, building it
// lazily over the active rule set and rebuilding when the table was
// mutated outside the engine (e.g. a direct detect.Apply) or the rule set
// changed (Confirm, UseRules). The bootstrap costs about one detection
// pass (split across shards when the session is sharded); every delta
// after that is proportional to what it touches, so the engine is the
// cheap path for continuously arriving data.
func (se *Session) Stream() (Streamer, error) {
	rules := se.rules()
	if len(rules) == 0 {
		return nil, fmt.Errorf("session %s: no rules to stream against (run discovery or UseRules first)", se.ID)
	}
	if se.str == nil || se.str.Stale() || !samePFDs(se.strRules, rules) {
		// A replacement engine continues the old sequence timeline (one
		// past the last issued seq), so cursors issued by the previous
		// engine resolve to a reset snapshot rather than an error.
		base := se.strNextBase
		if se.str != nil && se.str.Seq()+1 > base {
			base = se.str.Seq() + 1
		}
		eng, err := se.newStreamer(rules, base)
		if err != nil {
			return nil, fmt.Errorf("session %s: %w", se.ID, err)
		}
		se.str = eng
		se.strRules = rules
		if se.persist != nil {
			// A fresh engine breaks WAL continuity (its bootstrap state is
			// not snapshot + old WAL), so the new baseline must be durable
			// before any delta is journaled against it. If the checkpoint
			// fails the engine must not be cached either — a later call
			// would otherwise journal batches against a baseline that was
			// never snapshotted, making them unrecoverable.
			eng.SetSink(se.journalSink())
			if err := se.Checkpoint(); err != nil {
				se.str, se.strRules = nil, nil
				se.strNextBase = base
				return nil, err
			}
			se.strNextBase = 0
		}
	}
	return se.str, nil
}

// EngineStats describes the session's live incremental engine for
// observability endpoints. It reports without building: a session whose
// engine has not been constructed yet (or was invalidated) has Kind
// "none".
type EngineStats struct {
	// Kind is "none", "stream" (single engine), or "sharded".
	Kind string `json:"kind"`
	// Shards is the session's resolved shard count (meaningful even
	// before the engine is built).
	Shards  int           `json:"shards"`
	Stream  *stream.Stats `json:"stream,omitempty"`
	Sharded *shard.Stats  `json:"sharded,omitempty"`
}

// EngineStats returns a snapshot of the session's live incremental
// engine, never building one.
func (se *Session) EngineStats() EngineStats {
	out := EngineStats{Kind: "none", Shards: se.Shards()}
	switch e := se.str.(type) {
	case *stream.Engine:
		st := e.Stats()
		out.Kind, out.Stream = "stream", &st
	case *cluster.Coordinator:
		st := e.Stats()
		out.Kind, out.Sharded = "cluster", &st
	case *shard.Coordinator:
		st := e.Stats()
		out.Kind, out.Sharded = "sharded", &st
	}
	return out
}

// ApplyDeltas routes one delta batch through the session's incremental
// engine and refreshes the session's violation set from the maintained
// one (identical to what a full re-detection would produce, without
// running it).
func (se *Session) ApplyDeltas(batch stream.Batch) (*stream.Diff, error) {
	return se.ApplyDeltasCtx(context.Background(), batch)
}

// ApplyDeltasCtx is ApplyDeltas carrying the caller's context: the
// engine's spans — apply, journal, shard fan-out, worker RPCs — attach
// to the context's active trace, so one server request yields one tree.
func (se *Session) ApplyDeltasCtx(ctx context.Context, batch stream.Batch) (*stream.Diff, error) {
	eng, err := se.Stream()
	if err != nil {
		return nil, err
	}
	obs.SetSpanAttrs(ctx, "session", se.ID)
	diff, err := eng.ApplyCtx(ctx, batch)
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", se.ID, err)
	}
	se.Violations = eng.Violations()
	// Periodic snapshot compaction: once the journal has absorbed enough
	// batches, fold them into a fresh checkpoint so recovery replays a
	// short tail instead of the session's whole delta history. A failed
	// compaction is not fatal to the batch — it was already journaled
	// write-ahead, so recovery replays it from the WAL; the diff is
	// returned alongside the (persistence-typed) error.
	if se.persist != nil && se.persist.CompactionDue(se.ID) {
		if err := se.Checkpoint(); err != nil {
			return diff, fmt.Errorf("deltas applied but %w", err)
		}
	}
	return diff, nil
}

// ApplyRepairs writes repair suggestions into the session's table. When
// the session has a live incremental engine the repairs become cell
// deltas routed through it — the engine is never discarded and the
// violation diff of the repair falls out for free. Without one it falls
// back to the in-place detect.Apply (which bumps the table version, so a
// later Stream() rebuilds) — unless a persister is attached, in which
// case the engine is (re)built first so the repairs are journaled: the
// in-place path would mutate acknowledged state the durability layer
// never sees. Returns the number of changed cells and the violation diff
// (nil on the fallback path).
func (se *Session) ApplyRepairs(rs []detect.Repair) (int, *stream.Diff, error) {
	if se.str == nil || se.str.Stale() || !samePFDs(se.strRules, se.rules()) {
		if se.persist == nil {
			n, err := detect.Apply(se.Table, rs)
			return n, nil, err
		}
		if _, err := se.Stream(); err != nil {
			return 0, nil, err
		}
	}
	var batch stream.Batch
	for _, r := range rs {
		if r.Cell.Row < 0 || r.Cell.Row >= se.Table.NumRows() {
			return 0, nil, fmt.Errorf("session %s: apply repair: row %d out of range [0,%d) — suggestions predate a delta that renumbered the table; re-run RunRepairs",
				se.ID, r.Cell.Row, se.Table.NumRows())
		}
		cur, err := se.Table.CellByName(r.Cell.Row, r.Cell.Column)
		if err != nil {
			return 0, nil, fmt.Errorf("session %s: apply repair: %w", se.ID, err)
		}
		if cur != r.Suggested {
			batch = append(batch, stream.UpdateCell(r.Cell.Row, r.Cell.Column, r.Suggested))
		}
	}
	if len(batch) == 0 {
		return 0, &stream.Diff{Seq: se.str.Seq(), Rows: se.Table.NumRows()}, nil
	}
	diff, err := se.ApplyDeltas(batch)
	if err != nil {
		return 0, nil, err
	}
	return len(batch), diff, nil
}
