// Package core orchestrates the ANMAT system: project and dataset
// management over the document store, and the Profile → Discover →
// Confirm → Detect → Repair pipeline the demo walks through (Section 4).
package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/anmat/anmat/internal/detect"
	"github.com/anmat/anmat/internal/discovery"
	"github.com/anmat/anmat/internal/dmv"
	"github.com/anmat/anmat/internal/docstore"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/profile"
	"github.com/anmat/anmat/internal/table"
)

// Params are the two user inputs of Section 4 ("Anmat accepts two user
// input parameters"): the minimum coverage and the ratio of allowed
// violations.
type Params struct {
	// MinCoverage is γ.
	MinCoverage float64 `json:"min_coverage"`
	// AllowedViolations is ρ, the tolerated violation ratio per rule.
	AllowedViolations float64 `json:"allowed_violations"`
}

// DefaultParams mirrors discovery.Default.
func DefaultParams() Params {
	d := discovery.Default()
	return Params{MinCoverage: d.MinCoverage, AllowedViolations: d.MaxViolationRatio}
}

// System is the ANMAT engine bound to a document store.
type System struct {
	store *docstore.Store
}

// NewSystem builds a system over the store (use docstore.NewMem for
// ephemeral sessions).
func NewSystem(store *docstore.Store) *System {
	return &System{store: store}
}

// Store exposes the underlying document store.
func (s *System) Store() *docstore.Store { return s.store }

// Collections used by the system.
const (
	CollProjects   = "projects"
	CollPFDs       = "pfds"
	CollViolations = "violations"
	CollProfiles   = "profiles"
)

// CreateProject registers a project ("new users can create their own
// projects") and returns its id.
func (s *System) CreateProject(name string) int64 {
	return s.store.Insert(CollProjects, docstore.Doc{"name": name})
}

// Projects lists the registered project names.
func (s *System) Projects() []string {
	docs := s.store.Find(CollProjects, nil)
	out := make([]string, 0, len(docs))
	for _, d := range docs {
		if n, ok := d["name"].(string); ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// LoadPFDs retrieves previously stored PFDs for a table from the document
// store — the demo's flow of reloading rules mined in an earlier session
// instead of re-running discovery. Filters by table name; pass "" for all.
func (s *System) LoadPFDs(tableName string) ([]*pfd.PFD, error) {
	var f docstore.Filter
	if tableName != "" {
		f = docstore.Filter{"table": tableName}
	}
	docs := s.store.Find(CollPFDs, f)
	out := make([]*pfd.PFD, 0, len(docs))
	for _, d := range docs {
		b, err := json.Marshal(d)
		if err != nil {
			return nil, err
		}
		var p pfd.PFD
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("load pfd %v: %w", d[docstore.IDField], err)
		}
		out = append(out, &p)
	}
	return out, nil
}

// Session is one dataset loaded into a project, carrying the pipeline's
// intermediate products.
type Session struct {
	sys     *System
	Project string
	Table   *table.Table
	Params  Params

	Profile    profile.TableProfile
	Discovered []*pfd.PFD
	Confirmed  []*pfd.PFD
	Violations []pfd.Violation
	Repairs    []detect.Repair
	Stats      []discovery.CandidateStats
	DMVs       []DMVFinding
}

// NewSession binds a table to a project with the given parameters.
func (s *System) NewSession(project string, t *table.Table, p Params) *Session {
	return &Session{sys: s, Project: project, Table: t, Params: p}
}

// RunProfile computes and stores the table profile (the Figure 3 step:
// "the system will automatically profile the dataset").
func (se *Session) RunProfile() profile.TableProfile {
	se.Profile = profile.Profile(se.Table)
	doc := docstore.Doc{
		"project": se.Project,
		"table":   se.Table.Name(),
		"rows":    se.Profile.Rows,
		"columns": len(se.Profile.Columns),
	}
	se.sys.store.Insert(CollProfiles, doc)
	return se.Profile
}

// DMVFinding pairs a column with its suspected disguised missing values.
type DMVFinding struct {
	Column   string        `json:"column"`
	Suspects []dmv.Suspect `json:"suspects"`
}

// RunDMV scans every column for disguised missing values; findings are
// kept on the session and stored. It does not modify the table — use
// discovery.Config.CleanDMVs to exclude them from mining.
func (se *Session) RunDMV() []DMVFinding {
	se.DMVs = se.DMVs[:0]
	for i, col := range se.Table.Columns() {
		suspects := dmv.Detect(se.Table.ColumnByIndex(i), dmv.Options{})
		if len(suspects) == 0 {
			continue
		}
		se.DMVs = append(se.DMVs, DMVFinding{Column: col, Suspects: suspects})
	}
	for _, f := range se.DMVs {
		_, _ = se.sys.store.InsertJSON("dmv_findings", f)
	}
	return se.DMVs
}

// RunDiscovery mines PFDs with the session parameters and stores them.
func (se *Session) RunDiscovery() ([]*pfd.PFD, error) {
	cfg := discovery.Default()
	cfg.MinCoverage = se.Params.MinCoverage
	cfg.MaxViolationRatio = se.Params.AllowedViolations
	res, err := discovery.Discover(se.Table, cfg)
	if err != nil {
		return nil, err
	}
	se.Discovered = res.PFDs
	se.Stats = res.Stats
	for _, p := range res.PFDs {
		if _, err := se.sys.store.InsertJSON(CollPFDs, p); err != nil {
			return nil, fmt.Errorf("store pfd %s: %w", p.ID(), err)
		}
	}
	return res.PFDs, nil
}

// Confirm marks a subset of the discovered PFDs as validated by the user
// ("the user … can display the tableau of each dependency and confirm
// whether that discovered dependency is valid"). Passing no ids confirms
// everything.
func (se *Session) Confirm(ids ...string) []*pfd.PFD {
	if len(ids) == 0 {
		se.Confirmed = se.Discovered
		return se.Confirmed
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	se.Confirmed = se.Confirmed[:0]
	for _, p := range se.Discovered {
		if want[p.ID()] {
			se.Confirmed = append(se.Confirmed, p)
		}
	}
	return se.Confirmed
}

// UseRules installs externally obtained PFDs (e.g. loaded from the store
// via System.LoadPFDs) as the session's confirmed rule set, bypassing
// discovery.
func (se *Session) UseRules(ps []*pfd.PFD) {
	se.Confirmed = ps
}

// RunDetection evaluates the confirmed PFDs (all discovered ones when
// none were explicitly confirmed) and stores the violations.
func (se *Session) RunDetection() ([]pfd.Violation, error) {
	ps := se.Confirmed
	if ps == nil {
		ps = se.Discovered
	}
	d := detect.New(se.Table, detect.Options{})
	vs, err := d.DetectAll(ps)
	if err != nil {
		return nil, err
	}
	se.Violations = vs
	for _, v := range vs {
		if _, err := se.sys.store.InsertJSON(CollViolations, v); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// RunRepairs derives repair suggestions from the confirmed PFDs.
func (se *Session) RunRepairs() ([]detect.Repair, error) {
	ps := se.Confirmed
	if ps == nil {
		ps = se.Discovered
	}
	d := detect.New(se.Table, detect.Options{})
	var out []detect.Repair
	seen := map[string]bool{}
	for _, p := range ps {
		rs, err := d.Repairs(p)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			k := r.Cell.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell.Less(out[j].Cell) })
	se.Repairs = out
	return out, nil
}

// Run executes the whole pipeline: profile, discovery, detection, repair
// suggestions (confirming every discovered PFD).
func (se *Session) Run() error {
	se.RunProfile()
	if _, err := se.RunDiscovery(); err != nil {
		return err
	}
	se.Confirm()
	if _, err := se.RunDetection(); err != nil {
		return err
	}
	_, err := se.RunRepairs()
	return err
}
