package core

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/anmat/anmat/internal/cluster"
	"github.com/anmat/anmat/internal/docstore"
	"github.com/anmat/anmat/internal/stream"
)

// startClusterWorkers spins up n shard workers on loopback TCP and
// returns their base URLs.
func startClusterWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for s := 0; s < n; s++ {
		w := cluster.NewWorker(s, n)
		w.SetLogf(t.Logf)
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[s] = srv.URL
	}
	return urls
}

// TestDistributedSessionStream drives a session whose incremental engine
// runs over real HTTP workers and checks the violation set against an
// in-process twin at every step — the session surface cannot tell the
// transports apart.
func TestDistributedSessionStream(t *testing.T) {
	ctx := context.Background()
	urls := startClusterWorkers(t, 3)
	sys := NewSystemWith(docstore.NewMem(), SystemConfig{
		Params:  DefaultParams(),
		Workers: urls,
	})
	se := sys.NewSession("p", shardTestTable(), DefaultParams())
	se.UseRules(shardTestRules())
	twinSys := NewSystem(docstore.NewMem())
	twin := twinSys.NewSession("p", shardTestTable(), DefaultParams())
	twin.UseRules(shardTestRules())
	for _, s := range []*Session{se, twin} {
		if _, err := s.RunDetection(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if mustJSONStr(t, se.Violations) != mustJSONStr(t, twin.Violations) {
		t.Fatal("distributed detection diverged at baseline")
	}

	if got := se.Shards(); got != 3 {
		t.Fatalf("distributed session Shards() = %d, want 3", got)
	}
	eng, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	cc, ok := eng.(*cluster.Coordinator)
	if !ok {
		t.Fatalf("distributed session built %T", eng)
	}
	defer cc.Close()
	if st := se.EngineStats(); st.Kind != "cluster" || st.Shards != 3 {
		t.Fatalf("engine stats = %+v", st)
	}

	batch := stream.Batch{
		stream.AppendRows([]string{"8509990000", "TX"}, []string{"2125550000", "NY"}),
		stream.UpdateCell(1, "state", "FL"),
	}
	for _, s := range []*Session{se, twin} {
		if _, err := s.ApplyDeltas(batch); err != nil {
			t.Fatal(err)
		}
	}
	if mustJSONStr(t, se.Violations) != mustJSONStr(t, twin.Violations) {
		t.Fatal("distributed deltas diverged")
	}

	// Per-session override beats the system default worker list.
	solo := sys.NewSessionWith("p", shardTestTable(), SessionConfig{Workers: urls[:2]})
	if got := solo.Shards(); got != 2 {
		t.Fatalf("session worker override Shards() = %d, want 2", got)
	}
}

// TestDistributedSessionWorkerClaims pins the one-session-per-worker-set
// constraint: the first distributed session claims its endpoints, a
// second session over any of them is refused (its engine would silently
// replace the first session's shard state), and the same session may
// rebuild its engine over its own claim.
func TestDistributedSessionWorkerClaims(t *testing.T) {
	urls := startClusterWorkers(t, 2)
	sys := NewSystemWith(docstore.NewMem(), SystemConfig{
		Params:  DefaultParams(),
		Workers: urls,
	})

	se := sys.NewSession("p", shardTestTable(), DefaultParams())
	se.UseRules(shardTestRules())
	if _, err := se.Stream(); err != nil {
		t.Fatal(err)
	}

	other := sys.NewSession("p", shardTestTable(), DefaultParams())
	other.UseRules(shardTestRules())
	if _, err := other.Stream(); err == nil {
		t.Fatal("second distributed session built an engine over claimed workers")
	}
	// Overlap through a per-session override is refused too.
	overlap := sys.NewSessionWith("p", shardTestTable(), SessionConfig{Workers: urls[:1]})
	overlap.UseRules(shardTestRules())
	if _, err := overlap.Stream(); err == nil {
		t.Fatal("overlapping worker override built an engine over claimed workers")
	}

	// The claiming session itself can rebuild (rule change → new engine).
	se.UseRules(shardTestRules())
	if _, err := se.Stream(); err != nil {
		t.Fatalf("claiming session's engine rebuild refused: %v", err)
	}
}

// TestClusterSparePoolClaimOnce pins the shared failover pool: each
// spare endpoint is handed to exactly one session, and a spare that
// doubles as a claimed primary is skipped.
func TestClusterSparePoolClaimOnce(t *testing.T) {
	sys := NewSystemWith(docstore.NewMem(), SystemConfig{
		ClusterSpares: []string{"http://spare-a", "http://spare-b"},
	})
	if got := sys.claimSpare("s1"); got != "http://spare-a" {
		t.Fatalf("first claim = %q", got)
	}
	if got := sys.claimSpare("s2"); got != "http://spare-b" {
		t.Fatalf("second claim = %q", got)
	}
	if got := sys.claimSpare("s3"); got != "" {
		t.Fatalf("exhausted pool handed out %q", got)
	}

	// An endpoint listed both as a primary (claimed by s1) and as a spare
	// must never be handed to another session as a spare.
	sys2 := NewSystemWith(docstore.NewMem(), SystemConfig{
		ClusterSpares: []string{"http://dual", "http://free"},
	})
	if err := sys2.claimWorkers("s1", []string{"http://dual"}); err != nil {
		t.Fatal(err)
	}
	if got := sys2.claimSpare("s2"); got != "http://free" {
		t.Fatalf("spare claim = %q, want the unclaimed endpoint", got)
	}
}
