package core

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/anmat/anmat/internal/cluster"
	"github.com/anmat/anmat/internal/docstore"
	"github.com/anmat/anmat/internal/stream"
)

// startClusterWorkers spins up n shard workers on loopback TCP and
// returns their base URLs.
func startClusterWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for s := 0; s < n; s++ {
		w := cluster.NewWorker(s, n)
		w.SetLogf(t.Logf)
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[s] = srv.URL
	}
	return urls
}

// TestDistributedSessionStream drives a session whose incremental engine
// runs over real HTTP workers and checks the violation set against an
// in-process twin at every step — the session surface cannot tell the
// transports apart.
func TestDistributedSessionStream(t *testing.T) {
	ctx := context.Background()
	urls := startClusterWorkers(t, 3)
	sys := NewSystemWith(docstore.NewMem(), SystemConfig{
		Params:  DefaultParams(),
		Workers: urls,
	})
	se := sys.NewSession("p", shardTestTable(), DefaultParams())
	se.UseRules(shardTestRules())
	twinSys := NewSystem(docstore.NewMem())
	twin := twinSys.NewSession("p", shardTestTable(), DefaultParams())
	twin.UseRules(shardTestRules())
	for _, s := range []*Session{se, twin} {
		if _, err := s.RunDetection(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if mustJSONStr(t, se.Violations) != mustJSONStr(t, twin.Violations) {
		t.Fatal("distributed detection diverged at baseline")
	}

	if got := se.Shards(); got != 3 {
		t.Fatalf("distributed session Shards() = %d, want 3", got)
	}
	eng, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	cc, ok := eng.(*cluster.Coordinator)
	if !ok {
		t.Fatalf("distributed session built %T", eng)
	}
	defer cc.Close()
	if st := se.EngineStats(); st.Kind != "cluster" || st.Shards != 3 {
		t.Fatalf("engine stats = %+v", st)
	}

	batch := stream.Batch{
		stream.AppendRows([]string{"8509990000", "TX"}, []string{"2125550000", "NY"}),
		stream.UpdateCell(1, "state", "FL"),
	}
	for _, s := range []*Session{se, twin} {
		if _, err := s.ApplyDeltas(batch); err != nil {
			t.Fatal(err)
		}
	}
	if mustJSONStr(t, se.Violations) != mustJSONStr(t, twin.Violations) {
		t.Fatal("distributed deltas diverged")
	}

	// Per-session override beats the system default worker list.
	solo := sys.NewSessionWith("p", shardTestTable(), SessionConfig{Workers: urls[:2]})
	if got := solo.Shards(); got != 2 {
		t.Fatalf("session worker override Shards() = %d, want 2", got)
	}
}
