package core

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/anmat/anmat/internal/docstore"
	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/table"
	"github.com/anmat/anmat/internal/tableau"
)

func shardTestTable() *table.Table {
	return table.MustFromRows("Phone", []string{"phone", "state"}, [][]string{
		{"8501234567", "FL"},
		{"8507654321", "CA"}, // violates the constant rule
		{"2121234567", "NY"},
		{"2127654321", "NJ"}, // conflicts with row 2 under the variable rule
	})
}

func shardTestRules() []*pfd.PFD {
	return []*pfd.PFD{
		pfd.New("Phone", "phone", "state", tableau.New(
			tableau.Row{LHS: pattern.MustParseConstrained(`<850>\D{7}`), RHS: "FL"},
			tableau.Row{LHS: pattern.MustParseConstrained(`<\D{3}>\D{7}`), RHS: tableau.Wildcard},
		)),
	}
}

func mustJSONStr(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSessionShardsResolution pins the override chain: session value
// beats system default beats the floor of 1.
func TestSessionShardsResolution(t *testing.T) {
	sys := NewSystemWith(docstore.NewMem(), SystemConfig{Shards: 4})
	if got := sys.NewSession("p", shardTestTable(), DefaultParams()).Shards(); got != 4 {
		t.Fatalf("system default: %d", got)
	}
	se := sys.NewSessionWith("p", shardTestTable(), SessionConfig{Shards: 2})
	if got := se.Shards(); got != 2 {
		t.Fatalf("session override: %d", got)
	}
	plain := NewSystem(docstore.NewMem()).NewSession("p", shardTestTable(), DefaultParams())
	if got := plain.Shards(); got != 1 {
		t.Fatalf("floor: %d", got)
	}
}

// TestShardedSessionStreamAndRepairs drives the full session surface —
// Stream, ApplyDeltas, RunRepairs, ApplyRepairs, Confirm-triggered
// rebuild — through a sharded coordinator and checks the violation set
// against an unsharded twin session at every step.
func TestShardedSessionStreamAndRepairs(t *testing.T) {
	ctx := context.Background()
	sys := NewSystem(docstore.NewMem())
	se := sys.NewSessionWith("p", shardTestTable(), SessionConfig{Shards: 4})
	se.UseRules(shardTestRules())
	twin := sys.NewSession("p", shardTestTable(), DefaultParams())
	twin.UseRules(shardTestRules())
	for _, s := range []*Session{se, twin} {
		if _, err := s.RunDetection(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if mustJSONStr(t, se.Violations) != mustJSONStr(t, twin.Violations) {
		t.Fatal("sharded detection diverged at baseline")
	}

	eng, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.(*shard.Coordinator); !ok {
		t.Fatalf("sharded session built %T", eng)
	}
	if st := se.EngineStats(); st.Kind != "sharded" || st.Shards != 4 {
		t.Fatalf("engine stats = %+v", st)
	}

	batch := stream.Batch{stream.AppendRows([]string{"8509990000", "TX"})}
	for _, s := range []*Session{se, twin} {
		if _, err := s.ApplyDeltas(batch); err != nil {
			t.Fatal(err)
		}
	}
	if mustJSONStr(t, se.Violations) != mustJSONStr(t, twin.Violations) {
		t.Fatal("sharded deltas diverged")
	}

	// Repairs route through the coordinator as cell deltas.
	rs, err := se.RunRepairs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("expected repair suggestions")
	}
	twinRs, err := twin.RunRepairs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	n, diff, err := se.ApplyRepairs(rs)
	if err != nil {
		t.Fatal(err)
	}
	if diff == nil || n == 0 {
		t.Fatalf("ApplyRepairs = %d changed, diff %v", n, diff)
	}
	if _, _, err := twin.ApplyRepairs(twinRs); err != nil {
		t.Fatal(err)
	}
	if mustJSONStr(t, se.Violations) != mustJSONStr(t, twin.Violations) {
		t.Fatal("sharded repairs diverged")
	}

	// Snapshot carries the shard count.
	snap, err := se.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Shards != 4 {
		t.Fatalf("snapshot shards = %d", snap.Shards)
	}

	// A rule-set change rebuilds the coordinator on the continued
	// timeline.
	se.UseRules(shardTestRules())
	eng2, err := se.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if eng2 == eng {
		t.Fatal("rule change did not rebuild the engine")
	}
	if eng2.Seq() != eng.Seq()+1 {
		t.Fatalf("rebuilt engine seq %d, want %d", eng2.Seq(), eng.Seq()+1)
	}
}
