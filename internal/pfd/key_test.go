package pfd

import (
	"testing"

	"github.com/anmat/anmat/internal/table"
)

// TestViolationKeyInjective drives the structural key with adversarial
// identities that a separator-joined or naively concatenated encoding
// would collide: component content shifting across field boundaries,
// digit-leading column names bleeding into cell row numbers, and column
// names embedding the encoding's own control bytes.
func TestViolationKeyInjective(t *testing.T) {
	cases := []struct {
		name string
		a, b Violation
	}{
		{
			name: "field boundary shift",
			a:    Violation{PFDID: "a", Row: "b\x00c"},
			b:    Violation{PFDID: "a\x00b", Row: "c"},
		},
		{
			name: "separator byte in rule rendering",
			a:    Violation{PFDID: "p", Row: "x\x1fy"},
			b:    Violation{PFDID: "p\x1fx", Row: "y"},
		},
		{
			name: "digit-leading column vs longer row number",
			a:    Violation{PFDID: "p", Row: "r", Cells: []table.CellRef{{Row: 2, Column: "2x"}}},
			b:    Violation{PFDID: "p", Row: "r", Cells: []table.CellRef{{Row: 22, Column: "x"}}},
		},
		{
			name: "one column forging a cell boundary",
			a:    Violation{PFDID: "p", Row: "r", Cells: []table.CellRef{{Row: 1, Column: "a"}, {Row: 2, Column: "b"}}},
			b:    Violation{PFDID: "p", Row: "r", Cells: []table.CellRef{{Row: 1, Column: "a\x00\x002:b"}}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := tc.a.Key(), tc.b.Key()
			if ka == kb {
				t.Fatalf("distinct violations share key %q", ka)
			}
			if tc.a.Key() != ka || tc.b.Key() != kb {
				t.Fatalf("key not deterministic")
			}
		})
	}
}
