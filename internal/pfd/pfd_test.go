package pfd

import (
	"encoding/json"
	"testing"

	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/table"
	"github.com/anmat/anmat/internal/tableau"
)

// paperD1 is Table 1 of the paper (Name table), with r4 dirty.
func paperD1() *table.Table {
	t := table.MustNew("Name", []string{"name", "gender"})
	t.MustAppend("John Charles", "M")
	t.MustAppend("John Bosco", "M")
	t.MustAppend("Susan Orlean", "F")
	t.MustAppend("Susan Boyle", "M") // erroneous: should be F
	return t
}

// paperD2 is Table 2 of the paper (Zip table), with s4 dirty.
func paperD2() *table.Table {
	t := table.MustNew("Zip", []string{"zip", "city"})
	t.MustAppend("90001", "Los Angeles")
	t.MustAppend("90002", "Los Angeles")
	t.MustAppend("90003", "Los Angeles")
	t.MustAppend("90004", "New York") // erroneous: should be Los Angeles
	return t
}

func lambda2() *PFD {
	tp := tableau.New(tableau.Row{
		LHS: pattern.MustParseConstrained(`<Susan\ >\A*`),
		RHS: "F",
	})
	return New("Name", "name", "gender", tp)
}

func lambda3() *PFD {
	tp := tableau.New(tableau.Row{
		LHS: pattern.MustParseConstrained(`<900>\D{2}`),
		RHS: "Los Angeles",
	})
	return New("Zip", "zip", "city", tp)
}

func lambda4() *PFD {
	tp := tableau.New(tableau.Row{
		LHS: pattern.MustParseConstrained(`<\LU\LL*\ >\A*`),
		RHS: tableau.Wildcard,
	})
	return New("Name", "name", "gender", tp)
}

func lambda5() *PFD {
	tp := tableau.New(tableau.Row{
		LHS: pattern.MustParseConstrained(`<\D{3}>\D{2}`),
		RHS: tableau.Wildcard,
	})
	return New("Zip", "zip", "city", tp)
}

// TestPaperRunningExample reproduces Section 1 end to end: λ2 catches
// r4[gender], λ3 catches s4[city], λ4 catches r4 via the (r3, r4) pair,
// λ5 catches s4 by pairing with s1–s3.
func TestPaperRunningExample(t *testing.T) {
	d1, d2 := paperD1(), paperD2()

	vs, err := lambda2().Check(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Tuples[0] != 3 || vs[0].Observed != "M" || vs[0].Expected != "F" {
		t.Fatalf("λ2 violations = %+v", vs)
	}
	if len(vs[0].Cells) != 2 {
		t.Errorf("constant violation should have 2 cells, got %d", len(vs[0].Cells))
	}

	vs, err = lambda3().Check(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Tuples[0] != 3 || vs[0].Observed != "New York" {
		t.Fatalf("λ3 violations = %+v", vs)
	}

	vs, err = lambda4().Check(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("λ4 violations = %+v", vs)
	}
	if !vs[0].Variable || len(vs[0].Cells) != 4 {
		t.Errorf("λ4 violation should be a four-cell pair violation: %+v", vs[0])
	}
	if vs[0].Tuples[0] != 2 || vs[0].Tuples[1] != 3 {
		t.Errorf("λ4 should pair r3 and r4, got %v", vs[0].Tuples)
	}

	vs, err = lambda5().Check(d2)
	if err != nil {
		t.Fatal(err)
	}
	// s4 conflicts with each of s1, s2, s3.
	if len(vs) != 3 {
		t.Fatalf("λ5 should produce 3 pair violations, got %d", len(vs))
	}
	for _, v := range vs {
		if v.Tuples[1] != 3 {
			t.Errorf("every λ5 pair should involve s4: %v", v.Tuples)
		}
	}
}

func TestSatisfiedBy(t *testing.T) {
	clean := table.MustNew("Zip", []string{"zip", "city"})
	clean.MustAppend("90001", "Los Angeles")
	clean.MustAppend("90002", "Los Angeles")
	ok, err := lambda3().SatisfiedBy(clean)
	if err != nil || !ok {
		t.Errorf("clean table should satisfy λ3: %v %v", ok, err)
	}
	ok, err = lambda3().SatisfiedBy(paperD2())
	if err != nil || ok {
		t.Errorf("dirty table should violate λ3")
	}
}

func TestCheckMissingColumn(t *testing.T) {
	other := table.MustNew("Other", []string{"x", "y"})
	if _, err := lambda3().Check(other); err == nil {
		t.Error("missing columns should error")
	}
}

func TestViolationKeyStable(t *testing.T) {
	v1 := Violation{PFDID: "a", Row: "r", Cells: []table.CellRef{{Row: 1, Column: "c"}}}
	v2 := Violation{PFDID: "a", Row: "r", Cells: []table.CellRef{{Row: 1, Column: "c"}}}
	if v1.Key() != v2.Key() {
		t.Error("equal violations should share a key")
	}
	v3 := Violation{PFDID: "a", Row: "r", Cells: []table.CellRef{{Row: 2, Column: "c"}}}
	if v1.Key() == v3.Key() {
		t.Error("different cells should differ")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := lambda4()
	p.Coverage = 0.75
	p.Source = "discovered"
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back PFD
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Table != "Name" || back.LHS != "name" || back.RHS != "gender" {
		t.Errorf("header lost: %+v", back)
	}
	if back.Coverage != 0.75 || back.Source != "discovered" {
		t.Errorf("metadata lost: %+v", back)
	}
	if back.Tableau.Len() != 1 {
		t.Fatalf("tableau lost: %d rows", back.Tableau.Len())
	}
	r := back.Tableau.Rows()[0]
	if r.LHS.String() != `<\LU\LL*\ >\A*` || !r.Variable() {
		t.Errorf("row lost: %s → %s", r.LHS, r.RHS)
	}
	// Semantics survive: the deserialized PFD still catches r4.
	vs, err := back.Check(paperD1())
	if err != nil || len(vs) != 1 {
		t.Errorf("deserialized PFD broken: %v %v", vs, err)
	}
}

func TestUnmarshalBadPattern(t *testing.T) {
	bad := `{"table":"t","lhs":"a","rhs":"b","tableau":[{"lhs":"<\\L","rhs":"x"}]}`
	var p PFD
	if err := json.Unmarshal([]byte(bad), &p); err == nil {
		t.Error("bad pattern should fail to parse")
	}
}

func TestVariableViolationOrdering(t *testing.T) {
	p := lambda5()
	row := p.Tableau.Rows()[0]
	v := VariableViolation(p, row, 5, 2, "X", "Y")
	if v.Tuples[0] != 2 || v.Tuples[1] != 5 {
		t.Errorf("tuples should be ordered: %v", v.Tuples)
	}
	if v.Expected != "Y" || v.Observed != "X" {
		t.Errorf("values should follow the swap: %+v", v)
	}
}

func TestIDAndString(t *testing.T) {
	p := lambda3()
	if p.ID() != "Zip:zip->city" {
		t.Errorf("ID = %q", p.ID())
	}
	if s := p.String(); s == "" {
		t.Error("String empty")
	}
}
