// Package pfd defines the Pattern Functional Dependency type of Section 2:
// an embedded FD X → Y over a schema plus a pattern tableau, together with
// satisfaction/violation semantics and JSON serialization. This repository
// implements the single-attribute case (A → B) that the paper's discovery
// algorithm mines; composite keys reduce to it by column concatenation.
package pfd

import (
	"encoding/json"
	"fmt"
	"strconv"

	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/table"
	"github.com/anmat/anmat/internal/tableau"
)

// PFD is ψ = R(A → B, Tp).
type PFD struct {
	// Table is the relation name R.
	Table string
	// LHS and RHS are the attributes of the embedded FD A → B.
	LHS, RHS string
	// Tableau is Tp.
	Tableau *tableau.Tableau
	// Coverage is the fraction of LHS values matching some tableau row,
	// recorded at discovery time.
	Coverage float64
	// Source records how the PFD was obtained ("discovered", "manual").
	Source string
}

// New builds a PFD over one determining and one determined attribute.
func New(tbl, lhs, rhs string, tp *tableau.Tableau) *PFD {
	return &PFD{Table: tbl, LHS: lhs, RHS: rhs, Tableau: tp, Source: "manual"}
}

// String renders the PFD header like the paper: R([A = …] → [B]).
func (p *PFD) String() string {
	return fmt.Sprintf("%s (%s → %s), %d pattern tuple(s)", p.Table, p.LHS, p.RHS, p.Tableau.Len())
}

// ID returns a stable identifier for storage.
func (p *PFD) ID() string {
	return fmt.Sprintf("%s:%s->%s", p.Table, p.LHS, p.RHS)
}

// Violation is one detected violation. Constant rows produce two-cell
// violations (the LHS cell that matched and the RHS cell that disagreed
// with the constant); variable rows produce four-cell violations across a
// tuple pair, as in the λ4 example of the paper.
type Violation struct {
	// PFDID identifies the violated dependency.
	PFDID string `json:"pfd"`
	// Row is the tableau row violated (its String rendering).
	Row string `json:"rule"`
	// Cells are the violating cells, sorted.
	Cells []table.CellRef `json:"cells"`
	// Tuples are the violating tuple ids (one for constant, two for
	// variable rows).
	Tuples []int `json:"tuples"`
	// Observed is the offending RHS value; Expected is the constant the
	// rule demands (constant rows) or the conflicting other value
	// (variable rows).
	Observed string `json:"observed"`
	Expected string `json:"expected"`
	// Variable marks four-cell (pair) violations.
	Variable bool `json:"variable"`
}

// Key returns a canonical identity for de-duplicating violations: an
// injective structural encoding of (PFDID, Row, Cells). Each
// variable-length component is NUL-escaped and NUL-terminated (see
// appendComponent) and each cell row's digits are closed with ':', so the
// encoding decodes unambiguously left to right — no choice of rule IDs,
// pattern renderings, or column names (including ones embedding separator
// bytes) can make two distinct identities collide, which a plain
// separator join cannot guarantee. Unlike a length-prefixed encoding,
// component escaping also preserves the bytewise order of the components
// themselves, so key-ordered output sorts the way the rendered fields
// read.
func (v Violation) Key() string {
	b := make([]byte, 0, 16+len(v.PFDID)+len(v.Row)+16*len(v.Cells))
	b = appendComponent(b, v.PFDID)
	b = appendComponent(b, v.Row)
	for _, c := range v.Cells {
		b = strconv.AppendInt(b, int64(c.Row), 10)
		b = append(b, ':') // closes the digit run: column names may start with digits
		b = appendComponent(b, c.Column)
	}
	return string(b)
}

// appendComponent appends s with NUL escaped (0x00 → 0x00 0x01) followed
// by a 0x00 0x00 terminator. A decoder scans to the first unescaped NUL,
// so adjacent components never bleed into each other, and the escaped
// form compares bytewise in the same order as s itself.
func appendComponent(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			b = append(b, 0, 1)
		} else {
			b = append(b, s[i])
		}
	}
	return append(b, 0, 0)
}

// SatisfiedBy checks every tuple (and, for variable rows, every matching
// tuple pair) of t against the PFD and reports whether no violation
// exists. It is the reference semantics used by tests; detection uses the
// indexed engine in internal/detect.
func (p *PFD) SatisfiedBy(t *table.Table) (bool, error) {
	vs, err := p.Check(t)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}

// Check is the brute-force reference checker: O(n) per constant row and
// O(n²) per variable row. It exists to validate the optimized engine.
func (p *PFD) Check(t *table.Table) ([]Violation, error) {
	li, ok := t.ColIndex(p.LHS)
	if !ok {
		return nil, fmt.Errorf("pfd %s: table %q lacks column %q", p.ID(), t.Name(), p.LHS)
	}
	ri, ok := t.ColIndex(p.RHS)
	if !ok {
		return nil, fmt.Errorf("pfd %s: table %q lacks column %q", p.ID(), t.Name(), p.RHS)
	}
	var out []Violation
	n := t.NumRows()
	for _, row := range p.Tableau.Rows() {
		emb := row.LHS.Embedded()
		if !row.Variable() {
			for i := 0; i < n; i++ {
				lv, rv := t.Cell(i, li), t.Cell(i, ri)
				if emb.Matches(lv) && rv != row.RHS {
					out = append(out, constantViolation(p, row, i, lv, rv))
				}
			}
			continue
		}
		for i := 0; i < n; i++ {
			lvi := t.Cell(i, li)
			if !emb.Matches(lvi) {
				continue
			}
			for j := i + 1; j < n; j++ {
				lvj := t.Cell(j, li)
				if !emb.Matches(lvj) {
					continue
				}
				if t.Cell(i, ri) == t.Cell(j, ri) {
					continue
				}
				if row.LHS.EquivalentUnder(lvi, lvj) {
					out = append(out, VariableViolation(p, row, i, j, t.Cell(i, ri), t.Cell(j, ri)))
				}
			}
		}
	}
	return out, nil
}

func constantViolation(p *PFD, row tableau.Row, tuple int, lhsVal, rhsVal string) Violation {
	cells := []table.CellRef{
		{Row: tuple, Column: p.LHS},
		{Row: tuple, Column: p.RHS},
	}
	table.SortCellRefs(cells)
	return Violation{
		PFDID:    p.ID(),
		Row:      row.String(),
		Cells:    cells,
		Tuples:   []int{tuple},
		Observed: rhsVal,
		Expected: row.RHS,
	}
}

// ConstantViolation builds the two-cell violation object for a constant
// row; exported for the detection engine.
func ConstantViolation(p *PFD, row tableau.Row, tuple int, lhsVal, rhsVal string) Violation {
	return constantViolation(p, row, tuple, lhsVal, rhsVal)
}

// VariableViolation builds the four-cell violation object for a variable
// row over the tuple pair (i, j).
func VariableViolation(p *PFD, row tableau.Row, i, j int, rhsI, rhsJ string) Violation {
	if j < i {
		i, j = j, i
		rhsI, rhsJ = rhsJ, rhsI
	}
	cells := []table.CellRef{
		{Row: i, Column: p.LHS},
		{Row: i, Column: p.RHS},
		{Row: j, Column: p.LHS},
		{Row: j, Column: p.RHS},
	}
	table.SortCellRefs(cells)
	return Violation{
		PFDID:    p.ID(),
		Row:      row.String(),
		Cells:    cells,
		Tuples:   []int{i, j},
		Observed: rhsJ,
		Expected: rhsI,
		Variable: true,
	}
}

// jsonPFD is the serialization shape; patterns travel as strings.
type jsonPFD struct {
	Table    string    `json:"table"`
	LHS      string    `json:"lhs"`
	RHS      string    `json:"rhs"`
	Coverage float64   `json:"coverage"`
	Source   string    `json:"source"`
	Rows     []jsonRow `json:"tableau"`
}

type jsonRow struct {
	LHS      string `json:"lhs"`
	RHS      string `json:"rhs"`
	Support  int    `json:"support"`
	Position int    `json:"position"`
}

// MarshalJSON serializes the PFD with tableau patterns in the
// angle-bracket constrained syntax.
func (p *PFD) MarshalJSON() ([]byte, error) {
	j := jsonPFD{Table: p.Table, LHS: p.LHS, RHS: p.RHS, Coverage: p.Coverage, Source: p.Source}
	for _, r := range p.Tableau.Rows() {
		j.Rows = append(j.Rows, jsonRow{
			LHS: r.LHS.String(), RHS: r.RHS, Support: r.Support, Position: r.Position,
		})
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the serialized form back.
func (p *PFD) UnmarshalJSON(b []byte) error {
	var j jsonPFD
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	tp := tableau.New()
	for _, r := range j.Rows {
		q, err := pattern.ParseConstrained(r.LHS)
		if err != nil {
			return fmt.Errorf("tableau row %q: %w", r.LHS, err)
		}
		tp.Add(tableau.Row{LHS: q, RHS: r.RHS, Support: r.Support, Position: r.Position})
	}
	p.Table, p.LHS, p.RHS = j.Table, j.LHS, j.RHS
	p.Coverage, p.Source, p.Tableau = j.Coverage, j.Source, tp
	return nil
}
