// Package classify triages detected errors to speed up human validation
// (Section 4: "easy validation of the reported errors increases data
// cleaning tools' usability"). Given the observed value and the expected
// value of a violation, it labels the error as a case slip ("lL" for
// "IL"), a typo (small edit distance: "Chicag", "Chciago"), a truncation
// ("C" for "Chicago"), or a category swap (an entirely different valid
// value, as when a state is simply wrong).
package classify

import (
	"strings"
	"unicode"
)

// Kind is the error category.
type Kind uint8

const (
	// Identical means the two values are equal — not an error.
	Identical Kind = iota
	// CaseSlip means the values are equal ignoring letter case.
	CaseSlip
	// Truncation means the observed value is a strict prefix of the
	// expected value (or vice versa).
	Truncation
	// Typo means a small edit distance relative to length.
	Typo
	// Swap means an unrelated replacement value.
	Swap
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Identical:
		return "identical"
	case CaseSlip:
		return "case-slip"
	case Truncation:
		return "truncation"
	case Typo:
		return "typo"
	case Swap:
		return "swap"
	default:
		return "unknown"
	}
}

// Classify labels the relationship between an observed (dirty) value and
// the expected (clean) value.
func Classify(observed, expected string) Kind {
	if observed == expected {
		return Identical
	}
	if strings.EqualFold(observed, expected) {
		return CaseSlip
	}
	if observed != "" && expected != "" {
		if strings.HasPrefix(expected, observed) || strings.HasPrefix(observed, expected) {
			return Truncation
		}
	}
	d := Levenshtein(observed, expected)
	longer := len([]rune(observed))
	if l := len([]rune(expected)); l > longer {
		longer = l
	}
	// A typo alters a small fraction of the value; two edits on a long
	// value (transposition = 2 substitution-ish edits) still count. Very
	// short values (≤ 2 runes) that change at all are replacements, not
	// typos: "F" → "M" is a different category, not a slip.
	if longer >= 3 && (d == 1 || (d == 2 && longer >= 5)) {
		return Typo
	}
	return Swap
}

// Levenshtein computes the edit distance (insert/delete/substitute) over
// runes, using the two-row dynamic program.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// FoldCase reports whether the values differ only in letter case at some
// positions (stricter than EqualFold for diagnostics): same runes after
// unicode.ToLower.
func FoldCase(a, b string) bool {
	ra, rb := []rune(a), []rune(b)
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if unicode.ToLower(ra[i]) != unicode.ToLower(rb[i]) {
			return false
		}
	}
	return true
}

// Summary counts error kinds over (observed, expected) pairs — the
// per-dataset triage table shown in reports.
type Summary struct {
	Counts map[Kind]int
	Total  int
}

// Summarize classifies every pair.
func Summarize(pairs [][2]string) Summary {
	s := Summary{Counts: make(map[Kind]int)}
	for _, p := range pairs {
		s.Counts[Classify(p[0], p[1])]++
		s.Total++
	}
	return s
}
