package classify

import (
	"testing"
	"testing/quick"
)

func TestClassifyTable3Errors(t *testing.T) {
	// The D5 errors of Table 3, classified as a human would.
	cases := []struct {
		observed, expected string
		want               Kind
	}{
		{"Chicag", "Chicago", Truncation},
		{"C", "Chicago", Truncation},
		{"Chciago", "Chicago", Typo}, // transposition = distance 2, len 7
		{"lL", "IL", Swap},           // 'l' vs 'I' is not a case fold of the same letter
		{"iL", "IL", CaseSlip},
		{"MI", "CA", Swap},
		{"Chicago", "Chicago", Identical},
		{"Los Angele", "Los Angeles", Truncation},
		{"Lps Angeles", "Los Angeles", Typo},
		{"New York", "Los Angeles", Swap},
		{"F", "M", Swap},
	}
	for _, c := range cases {
		if got := Classify(c.observed, c.expected); got != c.want {
			t.Errorf("Classify(%q, %q) = %v, want %v", c.observed, c.expected, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Identical: "identical", CaseSlip: "case-slip", Truncation: "truncation",
		Typo: "typo", Swap: "swap", Kind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"Chicago", "Chciago", 2},
		{"abc", "abc", 0},
		{"日本", "日本語", 1}, // rune-wise, not byte-wise
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties: distance is symmetric, zero iff equal, and obeys the
// triangle inequality on samples.
func TestLevenshteinProperties(t *testing.T) {
	sym := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(sym, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	zero := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(zero, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	tri := func(a, b, c string) bool {
		if len(a) > 12 || len(b) > 12 || len(c) > 12 {
			return true
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFoldCase(t *testing.T) {
	if !FoldCase("iL", "IL") || FoldCase("lL", "IL") || FoldCase("ab", "abc") {
		t.Error("FoldCase misbehaving")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([][2]string{
		{"Chicag", "Chicago"},
		{"iL", "IL"},
		{"MI", "CA"},
		{"MI", "CA"},
	})
	if s.Total != 4 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.Counts[Truncation] != 1 || s.Counts[CaseSlip] != 1 || s.Counts[Swap] != 2 {
		t.Errorf("Counts = %v", s.Counts)
	}
}
