// Lightweight span timing: obs.Span(ctx, name) marks the start of a
// named stage and the returned func records its duration into the
// anmat_span_duration_seconds{span=...} histogram. Spans slower than
// the threshold are additionally kept in a bounded in-memory ring —
// the "what was slow recently" window an operator reads when a latency
// histogram moves but the cause is gone.
package obs

import (
	"context"
	"sync"
	"time"
)

// spanDur is the stage-latency histogram every span feeds.
var spanDur = Default.NewHistogramVec("anmat_span_duration_seconds",
	"Duration of named internal stages (pipeline stages, engine bootstrap, batch apply).",
	DurationBuckets, "span")

// slowRingSize bounds the retained slow-span window.
const slowRingSize = 64

// SlowSpan is one retained slow-span record.
type SlowSpan struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
}

var (
	slowMu        sync.Mutex
	slowRing      [slowRingSize]SlowSpan
	slowLen       int
	slowNext      int
	slowThreshold int64 = int64(250 * time.Millisecond)
)

// SetSlowThreshold sets the duration above which a span is kept in the
// slow-span ring (default 250ms; 0 or negative keeps every span).
func SetSlowThreshold(d time.Duration) {
	slowMu.Lock()
	slowThreshold = int64(d)
	slowMu.Unlock()
}

// Span starts a named span. Call the returned func when the stage
// ends; it observes the duration into the span histogram and retains
// the span in the slow ring when it exceeds the threshold. The context
// is accepted for signature stability (future propagation) and passed
// through unused.
func Span(_ context.Context, name string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		spanDur.WithLabelValues(name).Observe(d.Seconds())
		slowMu.Lock()
		if int64(d) >= slowThreshold {
			slowRing[slowNext] = SlowSpan{Name: name, Start: start, Duration: d}
			slowNext = (slowNext + 1) % slowRingSize
			if slowLen < slowRingSize {
				slowLen++
			}
		}
		slowMu.Unlock()
	}
}

// SpanHistogram resolves the duration histogram series of one span name
// — the handle benchmarks use to compute stage-latency quantiles from
// Snapshot deltas (see Quantile).
func SpanHistogram(name string) *Histogram {
	return spanDur.WithLabelValues(name)
}

// SlowSpans returns the retained slow spans, most recent first.
func SlowSpans() []SlowSpan {
	slowMu.Lock()
	defer slowMu.Unlock()
	out := make([]SlowSpan, 0, slowLen)
	for i := 1; i <= slowLen; i++ {
		out = append(out, slowRing[(slowNext-i+slowRingSize)%slowRingSize])
	}
	return out
}
