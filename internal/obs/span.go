// Lightweight span timing: obs.Span(ctx, name) marks the start of a
// named stage and the returned func records its duration into the
// anmat_span_duration_seconds{span=...} histogram. When the context
// carries an active trace (see trace.go) the span joins it as a child
// of the context's span. Spans slower than the threshold are
// additionally kept in a bounded in-memory ring — a view over the same
// span records the trace store collects — the "what was slow recently"
// window an operator reads when a latency histogram moves but the cause
// is gone.
package obs

import (
	"context"
	"crypto/rand"
	"sync"
	"time"
)

// spanDur is the stage-latency histogram every span feeds.
var spanDur = Default.NewHistogramVec("anmat_span_duration_seconds",
	"Duration of named internal stages (pipeline stages, engine bootstrap, batch apply).",
	DurationBuckets, "span")

// slowRingSize bounds the retained slow-span window.
const slowRingSize = 64

// SlowSpan is one retained slow-span record: the span's timing plus the
// trace it belonged to (empty for detached spans), so an operator can
// jump from "something was slow" to `anmat trace <id>`.
type SlowSpan struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	TraceID  string        `json:"trace_id,omitempty"`
}

var (
	slowMu        sync.Mutex
	slowRing      [slowRingSize]SlowSpan
	slowLen       int
	slowNext      int
	slowThreshold int64 = int64(250 * time.Millisecond)
)

// SetSlowThreshold sets the duration above which a span is kept in the
// slow-span ring — and above which a whole trace is always retained by
// the tail sampler (default 250ms; 0 or negative keeps every span).
func SetSlowThreshold(d time.Duration) {
	slowMu.Lock()
	slowThreshold = int64(d)
	slowMu.Unlock()
}

func currentSlowThreshold() int64 {
	slowMu.Lock()
	defer slowMu.Unlock()
	return slowThreshold
}

// Span starts a named span as a child of the context's active span (a
// detached timing-only span when the context carries none). Call the
// returned func when the stage ends; it observes the duration into the
// span histogram, records the span into its trace, and retains it in
// the slow ring when it exceeds the threshold.
func Span(ctx context.Context, name string) func() {
	_, end := StartSpan(ctx, name)
	return func() { end(nil) }
}

// observeSpan feeds one finished span record into the duration
// histogram and, over the threshold, the slow ring. Every span ending —
// traced or detached — passes through here, which is what makes the
// ring a view over the trace layer's records rather than a separate
// collector.
func observeSpan(rec SpanRecord) {
	spanDur.WithLabelValues(rec.Name).Observe(rec.Duration.Seconds())
	slowMu.Lock()
	if int64(rec.Duration) >= slowThreshold {
		slowRing[slowNext] = SlowSpan{Name: rec.Name, Start: rec.Start, Duration: rec.Duration, TraceID: rec.TraceID}
		slowNext = (slowNext + 1) % slowRingSize
		if slowLen < slowRingSize {
			slowLen++
		}
	}
	slowMu.Unlock()
}

// SpanHistogram resolves the duration histogram series of one span name
// — the handle benchmarks use to compute stage-latency quantiles from
// Snapshot deltas (see Quantile).
func SpanHistogram(name string) *Histogram {
	return spanDur.WithLabelValues(name)
}

// SlowSpans returns the retained slow spans, most recent first.
func SlowSpans() []SlowSpan {
	slowMu.Lock()
	defer slowMu.Unlock()
	out := make([]SlowSpan, 0, slowLen)
	for i := 1; i <= slowLen; i++ {
		out = append(out, slowRing[(slowNext-i+slowRingSize)%slowRingSize])
	}
	return out
}

// ResetSlowSpans empties the slow-span ring — the test-isolation hook
// (thresholds are left as configured).
func ResetSlowSpans() {
	slowMu.Lock()
	slowLen, slowNext = 0, 0
	slowMu.Unlock()
}

// fillRand fills b with crypto/rand bytes, reporting success.
func fillRand(b []byte) bool {
	_, err := rand.Read(b)
	return err == nil
}
