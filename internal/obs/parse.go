// A minimal parser for the Prometheus text exposition format — enough
// to round-trip what Render emits. It backs the rendering tests (every
// exposed line must parse back to the value that produced it) and the
// coordinator's scrape-aggregated cluster view, which reads worker
// /metrics endpoints over HTTP.
package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed series sample.
type Sample struct {
	Name   string // includes _bucket/_sum/_count suffixes for histograms
	Labels map[string]string
	Value  float64
}

// Families maps family name to declared TYPE ("counter", "gauge",
// "histogram", "untyped").
type Families map[string]string

// ParseText parses a Prometheus text exposition payload into samples
// plus the declared family types. Unknown or malformed lines are an
// error — the round-trip tests use this strictness to pin the renderer.
func ParseText(text string) ([]Sample, Families, error) {
	var samples []Sample
	fams := make(Families)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("obs: line %d: malformed TYPE: %q", ln+1, line)
			}
			fams[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: line %d: %w", ln+1, err)
		}
		samples = append(samples, s)
	}
	return samples, fams, nil
}

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name: %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("%v: %q", err, line)
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A timestamp field after the value is permitted by the format; the
	// renderer never emits one, so a second field here is an error.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields: %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %q", rest, line)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block, handling escaped label
// values, returning the remainder of the line after the closing brace.
func parseLabels(in string) (map[string]string, string, error) {
	labels := map[string]string{}
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, ", ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without =")
		}
		name := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label value not quoted")
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated label value")
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if rest == "" {
					return nil, "", fmt.Errorf("dangling escape")
				}
				e := rest[0]
				rest = rest[1:]
				switch e {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("unknown escape \\%c", e)
				}
				continue
			}
			val.WriteByte(c)
		}
		labels[name] = val.String()
	}
}

// SumSamples sums the values of every sample with the given name,
// optionally filtered to samples whose labels include all of match.
func SumSamples(samples []Sample, name string, match map[string]string) float64 {
	var sum float64
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			sum += s.Value
		}
	}
	return sum
}
