// HTTP instrumentation: one middleware giving every route a request
// counter (by route/method/status), a latency histogram (by route), an
// in-flight gauge, structured slog request logging keyed by a request
// ID (honoring an inbound X-Request-Id, minting one otherwise) — and a
// trace per request: an inbound W3C traceparent is adopted as a remote
// parent (the worker side of a coordinator RPC), otherwise a fresh
// trace is minted, and the trace ID is stamped on the response so the
// caller can fetch the tree.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// RequestIDHeader carries the request ID on requests and responses.
const RequestIDHeader = "X-Request-Id"

// TenantHeader names the requesting tenant; when present it is attached
// to the request's root span so traces answer "whose request was slow".
// (The admission layer owns the header's semantics; obs only labels.)
const TenantHeader = "X-Anmat-Tenant"

var (
	httpRequests = Default.NewCounterVec("anmat_http_requests_total",
		"HTTP requests served, by route pattern, method, and status code.",
		"route", "method", "code")
	httpDur = Default.NewHistogramVec("anmat_http_request_duration_seconds",
		"HTTP request latency by route pattern.",
		DurationBuckets, "route")
	httpInflight = Default.NewGauge("anmat_http_requests_inflight",
		"HTTP requests currently being served.")
)

// statusWriter captures the response status and body size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes (the embedded writer may support
// them; losing the interface here would silently disable streaming).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// NewRequestID mints a 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Instrument wraps a handler with request metrics, per-request tracing,
// and, when logger is non-nil, structured request logging. route is the
// label value (and logged route) — pass the mux pattern so cardinality
// stays bounded by the route table, not by request paths.
func Instrument(route string, next http.Handler, logger *slog.Logger) http.Handler {
	return instrument(route, next, logger, true)
}

// InstrumentPassive is Instrument without the per-request trace: for
// probe and observability routes (healthz, the trace API itself) whose
// steady polling would churn the trace store without telling anyone
// anything.
func InstrumentPassive(route string, next http.Handler, logger *slog.Logger) http.Handler {
	return instrument(route, next, logger, false)
}

func instrument(route string, next http.Handler, logger *slog.Logger, traced bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		sw := &statusWriter{ResponseWriter: w}
		req := r
		endTrace := func(error) {}
		if traced {
			ctx := ContextWithRequestID(r.Context(), rid)
			if sc, ok := ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
				ctx = ContextWithRemote(ctx, sc)
			}
			ctx, endTrace = StartTrace(ctx, "http.request")
			SetSpanAttrs(ctx, "route", route, "method", r.Method, "request_id", rid)
			if tenant := r.Header.Get(TenantHeader); tenant != "" {
				SetSpanAttrs(ctx, "tenant", tenant)
			}
			w.Header().Set(TraceIDHeader, TraceIDFrom(ctx))
			req = r.WithContext(ctx)
		}
		httpInflight.Inc()
		next.ServeHTTP(sw, req)
		httpInflight.Dec()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if traced {
			SetSpanAttrs(req.Context(), "status", strconv.Itoa(sw.status))
			var reqErr error
			if sw.status >= 500 {
				reqErr = fmt.Errorf("http %d", sw.status)
			}
			endTrace(reqErr)
		}
		elapsed := time.Since(start)
		httpRequests.WithLabelValues(route, r.Method, strconv.Itoa(sw.status)).Inc()
		httpDur.WithLabelValues(route).Observe(elapsed.Seconds())
		if logger != nil {
			logger.Info("request",
				slog.String("request_id", rid),
				slog.String("trace_id", sw.Header().Get(TraceIDHeader)),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// NewLogger builds a slog.Logger in the given format ("json" or
// "text") writing to w at Info level. Unknown formats fall back to
// text.
func NewLogger(w io.Writer, format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}
