package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeRender pins the scalar exposition lines.
func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "A counter.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	g := r.NewGauge("test_gauge", "A gauge.")
	g.Set(1.5)
	g.Dec()
	text := r.Text()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		"test_total 3",
		"# TYPE test_gauge gauge",
		"test_gauge 0.5",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}

// TestLabelEscaping pins backslash, quote, and newline escaping in
// label values — and that the parser inverts it exactly.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc_total", "", "path")
	raw := "a\\b\"c\nd"
	v.WithLabelValues(raw).Inc()
	text := r.Text()
	want := `esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(text, want+"\n") {
		t.Fatalf("escaped line %q not in:\n%s", want, text)
	}
	samples, _, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Labels["path"] != raw {
		t.Fatalf("parse did not invert escaping: %+v", samples)
	}
}

// TestHistogramCumulativity pins the bucket exposition: cumulative
// counts, a +Inf bucket equal to _count, and a correct _sum.
func TestHistogramCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	text := r.Text()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
	counts, sum, count := h.Snapshot()
	if count != 5 || sum != 56.05 {
		t.Fatalf("snapshot sum/count = %v/%d", sum, count)
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("snapshot counts = %v", counts)
	}
}

// TestHistogramBoundaryValue pins le semantics: a sample exactly on a
// bound lands in that bound's bucket (le is inclusive).
func TestHistogramBoundaryValue(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("b_seconds", "", []float64{1, 2})
	h.Observe(1)
	if !strings.Contains(r.Text(), `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary sample not in its le bucket:\n%s", r.Text())
	}
}

// TestConcurrentIncrement hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this also pins the
// registry's concurrency contract.
func TestConcurrentIncrement(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("cc_total", "", "w")
	g := r.NewGauge("cg", "")
	h := r.NewHistogramVec("ch_seconds", "", DurationBuckets, "w")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprint(w % 4)
			for i := 0; i < per; i++ {
				c.WithLabelValues(lbl).Inc()
				g.Add(1)
				h.WithLabelValues(lbl).Observe(0.001)
				// Render concurrently with writes on a slice of iterations.
				if i%251 == 0 {
					_ = r.Text()
				}
			}
		}(w)
	}
	wg.Wait()
	samples, _, err := ParseText(r.Text())
	if err != nil {
		t.Fatal(err)
	}
	if got := SumSamples(samples, "cc_total", nil); got != workers*per {
		t.Fatalf("counter sum = %v, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
	if got := SumSamples(samples, "ch_seconds_count", nil); got != workers*per {
		t.Fatalf("histogram count sum = %v, want %d", got, workers*per)
	}
}

// TestIdempotentRegistration pins that re-registering a family returns
// handles on the same series, and that a shape change panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("same_total", "x")
	b := r.NewCounter("same_total", "ignored second help")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("re-registered counter split series: %v", a.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type change on re-registration did not panic")
		}
	}()
	r.NewGauge("same_total", "")
}

// TestGaugeFunc pins render-time evaluation and last-writer-wins
// replacement.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 3
	r.NewGaugeFunc("sessions", "", func() float64 { return float64(n) })
	if !strings.Contains(r.Text(), "sessions 3\n") {
		t.Fatalf("gauge func not rendered:\n%s", r.Text())
	}
	r.NewGaugeFunc("sessions", "", func() float64 { return 7 })
	if !strings.Contains(r.Text(), "sessions 7\n") {
		t.Fatalf("gauge func not replaced:\n%s", r.Text())
	}
}

// TestParseRoundTrip renders a registry with every metric kind and
// checks the parse result reproduces each value — the round-trip proof
// that /metrics is valid exposition text.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rt_total", "help with \\ and\nnewline").Add(42)
	r.NewGaugeVec("rt_gauge", "", "shard", "state").WithLabelValues("3", "ok").Set(-1.25)
	h := r.NewHistogramVec("rt_seconds", "", []float64{0.5, 1.5}, "op")
	h.WithLabelValues("append").Observe(1)
	h.WithLabelValues("append").Observe(2)
	text := r.Text()
	samples, fams, err := ParseText(text)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if fams["rt_total"] != "counter" || fams["rt_gauge"] != "gauge" || fams["rt_seconds"] != "histogram" {
		t.Fatalf("family types = %v", fams)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		key := s.Name
		for _, k := range []string{"shard", "state", "op", "le"} {
			if v, ok := s.Labels[k]; ok {
				key += "|" + k + "=" + v
			}
		}
		byKey[key] = s.Value
	}
	want := map[string]float64{
		"rt_total":                            42,
		"rt_gauge|shard=3|state=ok":           -1.25,
		"rt_seconds_bucket|op=append|le=0.5":  0,
		"rt_seconds_bucket|op=append|le=1.5":  1,
		"rt_seconds_bucket|op=append|le=+Inf": 2,
		"rt_seconds_sum|op=append":            3,
		"rt_seconds_count|op=append":          2,
	}
	for k, v := range want {
		if byKey[k] != v {
			t.Errorf("%s = %v, want %v", k, byKey[k], v)
		}
	}
}

// TestQuantile pins the bucket-interpolation estimate.
func TestQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []uint64{10, 10, 0, 0} // uniform-ish: 10 in (0,1], 10 in (1,2]
	if q := Quantile(0.5, bounds, counts); q != 1 {
		t.Fatalf("p50 = %v, want 1", q)
	}
	if q := Quantile(0.75, bounds, counts); q != 1.5 {
		t.Fatalf("p75 = %v, want 1.5", q)
	}
	if q := Quantile(0.5, bounds, []uint64{0, 0, 0, 0}); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
	// Samples past the last bound clamp to it.
	if q := Quantile(0.99, bounds, []uint64{0, 0, 0, 5}); q != 4 {
		t.Fatalf("overflow quantile = %v, want 4", q)
	}
}

// TestSpan pins the histogram feed and the slow ring.
func TestSpan(t *testing.T) {
	SetSlowThreshold(0) // keep everything
	defer SetSlowThreshold(250 * time.Millisecond)
	end := Span(context.Background(), "test.stage")
	time.Sleep(time.Millisecond)
	end()
	found := false
	for _, s := range SlowSpans() {
		if s.Name == "test.stage" && s.Duration > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("span not retained in slow ring at threshold 0")
	}
	samples, _, err := ParseText(Default.Text())
	if err != nil {
		t.Fatal(err)
	}
	if SumSamples(samples, "anmat_span_duration_seconds_count", map[string]string{"span": "test.stage"}) < 1 {
		t.Fatal("span histogram did not record")
	}
}

// TestHandlerAndMiddleware drives an instrumented route end to end:
// request counter, latency histogram, request ID header, and a valid
// /metrics payload.
func TestHandlerAndMiddleware(t *testing.T) {
	var logBuf strings.Builder
	logger := NewLogger(&logBuf, "json")
	okHandler := Instrument("GET /ping", httpOK{}, logger)
	srv := httptest.NewServer(okHandler)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get(RequestIDHeader); len(rid) != 16 {
		t.Fatalf("request id header = %q", rid)
	}
	if !strings.Contains(logBuf.String(), `"route":"GET /ping"`) || !strings.Contains(logBuf.String(), `"request_id"`) {
		t.Fatalf("structured request log missing fields: %s", logBuf.String())
	}

	ms := httptest.NewServer(Default.Handler())
	defer ms.Close()
	mresp, err := ms.Client().Get(ms.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	samples, _, err := ParseText(string(raw))
	if err != nil {
		t.Fatalf("/metrics did not round-trip: %v", err)
	}
	if SumSamples(samples, "anmat_http_requests_total",
		map[string]string{"route": "GET /ping", "code": "200"}) < 1 {
		t.Fatal("request counter not visible on /metrics")
	}
}

type httpOK struct{}

func (httpOK) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	_, _ = w.Write([]byte("ok"))
}
