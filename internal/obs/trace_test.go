package obs

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// resetTracing restores the process-global tracing state around a test.
func resetTracing(t *testing.T) {
	t.Helper()
	Traces.Reset()
	Traces.SetSampleRate(1.0)
	Traces.SetCap(DefaultTraceCap)
	SetSlowThreshold(250 * time.Millisecond)
	ResetSlowSpans()
	t.Cleanup(func() {
		Traces.Reset()
		Traces.SetSampleRate(1.0)
		Traces.SetCap(DefaultTraceCap)
		SetSlowThreshold(250 * time.Millisecond)
		ResetSlowSpans()
	})
}

// TestTraceparentRoundTrip pins the W3C render/parse pair: a valid span
// context survives the round trip; malformed headers parse to "no
// parent", never panic or half-parse.
func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("minted span context invalid: %+v", sc)
	}
	hdr := sc.Traceparent()
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip %q: got %+v ok=%v, want %+v", hdr, got, ok, sc)
	}
	// A foreign version with extra trailing data is still a 4-field parse
	// failure under our strict reader (version 00 widths only).
	tid, sid := sc.TraceID, sc.SpanID

	malformed := []struct {
		name, in string
	}{
		{"empty", ""},
		{"garbage", "not-a-traceparent"},
		{"three fields", "00-" + tid + "-" + sid},
		{"five fields", "00-" + tid + "-" + sid + "-01-extra"},
		{"reserved version ff", "ff-" + tid + "-" + sid + "-01"},
		{"non-hex version", "zz-" + tid + "-" + sid + "-01"},
		{"short trace id", "00-" + tid[:31] + "-" + sid + "-01"},
		{"long trace id", "00-" + tid + "0-" + sid + "-01"},
		{"short span id", "00-" + tid + "-" + sid[:15] + "-01"},
		{"non-hex trace id", "00-" + strings.Repeat("g", 32) + "-" + sid + "-01"},
		{"uppercase hex", "00-" + strings.ToUpper(tid) + "-" + sid + "-01"},
		{"all-zero trace id", "00-" + strings.Repeat("0", 32) + "-" + sid + "-01"},
		{"all-zero span id", "00-" + tid + "-" + strings.Repeat("0", 16) + "-01"},
		{"short flags", "00-" + tid + "-" + sid + "-1"},
		{"non-hex flags", "00-" + tid + "-" + sid + "-zz"},
	}
	for _, tc := range malformed {
		if _, ok := ParseTraceparent(tc.in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", tc.name, tc.in)
		}
	}
	// Flags other than 01 are fine (we ignore them), and surrounding
	// whitespace is trimmed.
	for _, in := range []string{
		"00-" + tid + "-" + sid + "-00",
		"  00-" + tid + "-" + sid + "-01  ",
	} {
		if got, ok := ParseTraceparent(in); !ok || got.TraceID != tid || got.SpanID != sid {
			t.Errorf("ParseTraceparent(%q) = %+v ok=%v, want accept with same IDs", in, got, ok)
		}
	}
}

// TestTraceParentLinks builds one trace through the public API and
// checks the recorded tree: children point at their parents, every span
// shares the trace ID, and attributes land on the span they were set on.
func TestTraceParentLinks(t *testing.T) {
	resetTracing(t)
	ctx, endTrace := StartTrace(context.Background(), "http.request")
	SetSpanAttrs(ctx, "route", "POST /api/v1/sessions/{id}/deltas")
	rootID := TraceIDFrom(ctx)
	if rootID == "" {
		t.Fatal("no trace ID on the root context")
	}
	if tp := TraceparentFrom(ctx); !strings.Contains(tp, rootID) {
		t.Fatalf("traceparent %q does not carry trace ID %s", tp, rootID)
	}
	childCtx, endChild := StartSpan(ctx, "stream.apply")
	SetSpanAttrs(childCtx, "seq", "1")
	_, endGrand := StartSpan(childCtx, "persist.journal")
	endGrand(nil)
	endChild(nil)
	endTrace(nil)

	tr, ok := Traces.Get(rootID)
	if !ok {
		t.Fatalf("trace %s not retained (rate 1.0)", rootID)
	}
	if tr.Name != "POST /api/v1/sessions/{id}/deltas" {
		t.Errorf("trace name = %q, want the route attribute", tr.Name)
	}
	byName := map[string]SpanRecord{}
	for _, sp := range tr.Spans {
		if sp.TraceID != rootID {
			t.Errorf("span %s carries trace ID %s, want %s", sp.Name, sp.TraceID, rootID)
		}
		byName[sp.Name] = sp
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3: %+v", len(tr.Spans), tr.Spans)
	}
	root, child, grand := byName["http.request"], byName["stream.apply"], byName["persist.journal"]
	if root.Parent != "" {
		t.Errorf("root has parent %q", root.Parent)
	}
	if tr.Root != root.SpanID {
		t.Errorf("trace root = %q, want %q", tr.Root, root.SpanID)
	}
	if child.Parent != root.SpanID {
		t.Errorf("child parent = %q, want root %q", child.Parent, root.SpanID)
	}
	if grand.Parent != child.SpanID {
		t.Errorf("grandchild parent = %q, want child %q", grand.Parent, child.SpanID)
	}
	if child.Attrs["seq"] != "1" {
		t.Errorf("child attrs = %v, want seq=1", child.Attrs)
	}
}

// TestRemoteSegmentAlwaysKept pins the worker-side contract: a trace
// rooted in another process (inbound traceparent) is retained regardless
// of the sample rate — the root-owning process makes the call.
func TestRemoteSegmentAlwaysKept(t *testing.T) {
	resetTracing(t)
	Traces.SetSampleRate(0)
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx := ContextWithRemote(context.Background(), parent)
	ctx, endTrace := StartTrace(ctx, "http.request")
	if got := TraceIDFrom(ctx); got != parent.TraceID {
		t.Fatalf("remote segment trace ID = %s, want adopted %s", got, parent.TraceID)
	}
	_, endChild := StartSpan(ctx, "stream.apply")
	endChild(nil)
	endTrace(nil)
	tr, ok := Traces.Get(parent.TraceID)
	if !ok {
		t.Fatal("remote segment dropped by the sampler; must always be kept")
	}
	if !tr.Remote || tr.Root != "" {
		t.Errorf("remote=%v root=%q, want remote=true with no local root", tr.Remote, tr.Root)
	}
	// The segment root links back to the remote parent span.
	var segRoot SpanRecord
	for _, sp := range tr.Spans {
		if sp.Name == "http.request" {
			segRoot = sp
		}
	}
	if segRoot.Parent != parent.SpanID {
		t.Errorf("segment root parent = %q, want remote parent %q", segRoot.Parent, parent.SpanID)
	}
}

// TestTailSamplingProperty drives many randomized traces through the
// finalizer and checks the sampler's invariants: every errored trace and
// every slow-over-threshold trace is retained regardless of the rate;
// unremarkable traces are dropped at rate 0 and kept at rate 1; and the
// store never exceeds its configured bound.
func TestTailSamplingProperty(t *testing.T) {
	resetTracing(t)
	const bound = 32
	Traces.SetCap(bound)
	rng := rand.New(rand.NewSource(1))

	finishOne := func(errored, slow bool) string {
		ctx, endTrace := StartTrace(context.Background(), "http.request")
		id := TraceIDFrom(ctx)
		// The threshold is read at finalization, so flipping it between
		// start and end deterministically makes this trace slow (0 =
		// everything is slow) or not (1h).
		if slow {
			SetSlowThreshold(0)
		} else {
			SetSlowThreshold(time.Hour)
		}
		var err error
		if errored {
			err = fmt.Errorf("boom")
		}
		endTrace(err)
		return id
	}

	for i := 0; i < 400; i++ {
		rate := []float64{0, 0.5, 1}[rng.Intn(3)]
		Traces.SetSampleRate(rate)
		errored, slow := rng.Intn(2) == 0, rng.Intn(2) == 0
		id := finishOne(errored, slow)
		_, kept := Traces.Get(id)
		switch {
		case errored || slow:
			if !kept {
				t.Fatalf("iter %d: errored=%v slow=%v rate=%v dropped; must always be retained", i, errored, slow, rate)
			}
		case rate == 0:
			if kept {
				t.Fatalf("iter %d: unremarkable trace kept at rate 0", i)
			}
		case rate == 1:
			if !kept {
				t.Fatalf("iter %d: unremarkable trace dropped at rate 1", i)
			}
		}
		if n := Traces.Len(); n > bound {
			t.Fatalf("iter %d: store holds %d traces, bound is %d", i, n, bound)
		}
	}

	// Determinism: the keep decision is a pure function of the trace ID,
	// so distinct processes (and re-runs) agree.
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if sampleKeep(id, 0.3) != sampleKeep(id, 0.3) {
			t.Fatal("sampleKeep not deterministic in the trace ID")
		}
	}
}

// TestSlowRingIsTraceView checks the slow ring records carry the trace
// ID of the trace that produced them, and that the reset hook empties
// the ring for test isolation.
func TestSlowRingIsTraceView(t *testing.T) {
	resetTracing(t)
	SetSlowThreshold(1)
	ctx, endTrace := StartTrace(context.Background(), "http.request")
	id := TraceIDFrom(ctx)
	time.Sleep(time.Millisecond)
	endTrace(nil)
	spans := SlowSpans()
	if len(spans) == 0 {
		t.Fatal("no slow spans retained under a 1ns threshold")
	}
	if spans[0].TraceID != id {
		t.Errorf("slow span trace ID = %q, want %q", spans[0].TraceID, id)
	}
	ResetSlowSpans()
	if got := SlowSpans(); len(got) != 0 {
		t.Errorf("ring not empty after reset: %d spans", len(got))
	}
}

// TestDetachedSpanStaysOut: a span started without an active trace feeds
// metrics only — the trace store must not accumulate orphan buffers for
// it beyond the pending bound (which Reset clears anyway).
func TestDetachedSpanStaysOut(t *testing.T) {
	resetTracing(t)
	_, end := StartSpan(context.Background(), "stage.profile")
	end(nil)
	if n := Traces.Len(); n != 0 {
		t.Fatalf("detached span retained a trace: %d", n)
	}
}

// TestSpanCatalogCoversTestNames guards the names used across the test
// suite (and thus the codebase's span vocabulary) are registered.
func TestSpanCatalogCoversTestNames(t *testing.T) {
	for _, name := range []string{
		"http.request", "stage.profile", "stage.detection", "stream.bootstrap",
		"stream.apply", "shard.fanout", "shard.node.apply", "cluster.rpc",
		"cluster.wal.append", "persist.journal",
	} {
		if !SpanNameRegistered(name) {
			t.Errorf("span name %q not in the catalog", name)
		}
	}
	if SpanNameRegistered("made.up.name") {
		t.Error("catalog accepted an unregistered name")
	}
}
