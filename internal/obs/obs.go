// Package obs is the zero-dependency observability substrate: a
// concurrent metrics registry (counters, gauges, histograms, labeled
// families) that renders the Prometheus text exposition format, plus
// lightweight span timing feeding stage-latency histograms and a ring
// of recent slow spans (span.go), and HTTP instrumentation middleware
// with request-ID structured logging (http.go).
//
// Registration is idempotent by metric name: asking for an existing
// family returns the same handles, so independently constructed
// engines, coordinators, and workers in one process share one set of
// process-global series (the Default registry). A name re-registered
// with a different type, label set, or bucket layout panics — that is
// a programming error, not a runtime condition.
//
// Hot-path cost is one atomic op per counter/gauge touch and one
// binary search plus three atomics per histogram observation; handles
// are resolved once (package-level vars at the instrumentation sites),
// so the steady state does no locking and no allocation.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-global registry every layer instruments into;
// /metrics on the server and on shard workers renders it.
var Default = NewRegistry()

// DurationBuckets are the fixed upper bounds (seconds) used by every
// latency histogram: 100µs to 10s, roughly 2.5x apart.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the fixed upper bounds (bytes) used by payload-size
// histograms: 256B to 64MiB, 4x apart.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Registry is a concurrent metric registry. The zero value is not
// usable; see NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: a scalar series or a labeled vec.
type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu      sync.RWMutex
	series  map[string]*series // key: label values joined by 0xff
	gaugeFn func() float64     // GaugeFunc families only
}

// series is one (metric, label values) time series. Counter and gauge
// values live in bits as float64 bits; histograms use counts/sum/count.
type series struct {
	labelVals []string
	bits      atomic.Uint64
	counts    []atomic.Uint64 // len(buckets)+1, last is +Inf
	sumBits   atomic.Uint64
	count     atomic.Uint64
}

func (s *series) addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing series.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored — counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.s.addFloat(&c.s.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// Gauge is a series that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { g.s.addFloat(&g.s.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram is a fixed-bucket distribution series.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with upper bound >= v
	h.s.counts[i].Add(1)
	h.s.addFloat(&h.s.sumBits, v)
	h.s.count.Add(1)
}

// Snapshot returns the per-bucket counts (last entry is +Inf), the sum
// of samples, and the sample count, read non-atomically as a group (an
// in-flight Observe may straddle the read; fine for reporting).
func (h *Histogram) Snapshot() (counts []uint64, sum float64, count uint64) {
	counts = make([]uint64, len(h.s.counts))
	for i := range h.s.counts {
		counts[i] = h.s.counts[i].Load()
	}
	return counts, math.Float64frombits(h.s.sumBits.Load()), h.s.count.Load()
}

// Buckets returns the histogram's upper bounds (excluding +Inf).
func (h *Histogram) Buckets() []float64 { return h.buckets }

// Quantile estimates the q-quantile (0 < q < 1) of the distribution
// described by bucket counts over bounds, by linear interpolation
// within the bucket the quantile falls into — the same estimate
// Prometheus's histogram_quantile computes. Returns NaN when empty.
func Quantile(q float64, bounds []float64, counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(bounds) { // +Inf bucket: clamp to the last finite bound
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (bounds[i]-lo)*frac
		}
	}
	return bounds[len(bounds)-1]
}

// register resolves (creating if needed) a family, enforcing the
// idempotency contract: same name must mean same type, labels, and
// buckets.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	if buckets != nil {
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: metric %q has unsorted buckets", name))
		}
		buckets = append([]float64(nil), buckets...)
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sep joins label values into a series key; 0xff cannot appear in UTF-8
// text, so the join is unambiguous.
const sep = "\xff"

// get resolves (creating if needed) the series for the label values.
func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, sep)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: append([]string(nil), vals...)}
	if f.typ == "histogram" {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// NewCounter registers (or resolves) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return &Counter{f.get(nil)}
}

// NewGauge registers (or resolves) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return &Gauge{f.get(nil)}
}

// NewGaugeFunc registers a gauge whose value is computed by fn at
// render time. Re-registering the name replaces the function (last one
// wins — the usual pattern is a freshly constructed component taking
// over reporting from its predecessor in tests). fn must not call back
// into the registry.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// NewHistogram registers (or resolves) an unlabeled histogram over the
// given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, buckets)
	return &Histogram{f.get(nil), f.buckets}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// NewCounterVec registers (or resolves) a counter family with the
// given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels, nil)}
}

// WithLabelValues resolves one series; resolve once and keep the
// handle on hot paths.
func (v *CounterVec) WithLabelValues(vals ...string) *Counter {
	return &Counter{v.f.get(vals)}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// NewGaugeVec registers (or resolves) a gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels, nil)}
}

// WithLabelValues resolves one series.
func (v *GaugeVec) WithLabelValues(vals ...string) *Gauge {
	return &Gauge{v.f.get(vals)}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// NewHistogramVec registers (or resolves) a histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, "histogram", labels, buckets)}
}

// WithLabelValues resolves one series.
func (v *HistogramVec) WithLabelValues(vals ...string) *Histogram {
	return &Histogram{v.f.get(vals), v.f.buckets}
}

// Render writes the registry in the Prometheus text exposition format
// (version 0.0.4), deterministically: families sorted by name, series
// sorted by label values.
func (r *Registry) Render(sb *strings.Builder) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.render(sb)
	}
}

// FamilyInfo describes one registered metric family — the surface the
// naming lint (cmd/obslint) walks.
type FamilyInfo struct {
	Name   string
	Type   string // "counter" | "gauge" | "histogram"
	Labels []string
}

// Families lists the registered families, sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.RLock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{Name: f.name, Type: f.typ, Labels: append([]string(nil), f.labels...)})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Text renders the registry to a string.
func (r *Registry) Text() string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

// Handler returns an http.Handler serving the registry as a /metrics
// endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var sb strings.Builder
		r.Render(&sb)
		_, _ = w.Write([]byte(sb.String()))
	})
}

func (f *family) render(sb *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]*series, len(keys))
	for i, k := range keys {
		snap[i] = f.series[k]
	}
	fn := f.gaugeFn
	f.mu.RUnlock()
	if len(snap) == 0 && fn == nil {
		return
	}
	if f.help != "" {
		sb.WriteString("# HELP ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(f.help))
		sb.WriteByte('\n')
	}
	sb.WriteString("# TYPE ")
	sb.WriteString(f.name)
	sb.WriteByte(' ')
	sb.WriteString(f.typ)
	sb.WriteByte('\n')
	if fn != nil {
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(fn()))
		sb.WriteByte('\n')
		return
	}
	for _, s := range snap {
		switch f.typ {
		case "histogram":
			f.renderHistogram(sb, s)
		default:
			sb.WriteString(f.name)
			writeLabels(sb, f.labels, s.labelVals, "")
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(math.Float64frombits(s.bits.Load())))
			sb.WriteByte('\n')
		}
	}
}

// renderHistogram emits the cumulative _bucket series plus _sum and
// _count.
func (f *family) renderHistogram(sb *strings.Builder, s *series) {
	var cum uint64
	for i := 0; i <= len(f.buckets); i++ {
		cum += s.counts[i].Load()
		le := "+Inf"
		if i < len(f.buckets) {
			le = formatFloat(f.buckets[i])
		}
		sb.WriteString(f.name)
		sb.WriteString("_bucket")
		writeLabels(sb, f.labels, s.labelVals, "le")
		// writeLabels left the brace open for the le label.
		sb.WriteString(`le="`)
		sb.WriteString(le)
		sb.WriteString(`"} `)
		sb.WriteString(strconv.FormatUint(cum, 10))
		sb.WriteByte('\n')
	}
	sb.WriteString(f.name)
	sb.WriteString("_sum")
	writeLabels(sb, f.labels, s.labelVals, "")
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(math.Float64frombits(s.sumBits.Load())))
	sb.WriteByte('\n')
	sb.WriteString(f.name)
	sb.WriteString("_count")
	writeLabels(sb, f.labels, s.labelVals, "")
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatUint(s.count.Load(), 10))
	sb.WriteByte('\n')
}

// writeLabels emits {k="v",...}. With extra != "" the closing brace is
// left off (and a trailing comma added when other labels precede it) so
// the caller can append one more label; with no labels at all and no
// extra, nothing is emitted.
func writeLabels(sb *strings.Builder, names, vals []string, extra string) {
	if len(names) == 0 && extra == "" {
		return
	}
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(vals[i]))
		sb.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		return // caller writes extra label and closes the brace
	}
	sb.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes HELP text: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros, everything else in Go's shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
