// The span-name catalog: every span name the codebase starts must be
// listed here (exact names, or a "prefix.*" wildcard for families built
// from a bounded enum, like the pipeline stages). cmd/obslint walks the
// source for obs.Span/StartSpan/StartTrace call sites and fails CI on a
// name this catalog does not know — the same no-unregistered-names
// discipline the metric registry enforces at runtime, applied to spans.
package obs

import "strings"

// SpanCatalog lists every registered span name. Entries ending in ".*"
// are prefix wildcards.
var SpanCatalog = []string{
	// HTTP roots (the route lands in the "route" attribute; see
	// Instrument).
	"http.request",
	// Pipeline stages (core.RunStages): stage.profile, stage.dmv,
	// stage.discovery, stage.confirm, stage.detection, stage.repairs.
	"stage.*",
	// Incremental detection.
	"stream.bootstrap",
	"stream.apply",
	// Sharded fan-out (coordinator side).
	"shard.fanout",
	"shard.node.apply",
	// Distributed mode: the coordinator→worker RPC (one span per
	// attempt) and the coordinator's failover-store WAL append.
	"cluster.rpc",
	"cluster.wal.append",
	// Session durability: the write-ahead journal (group-commit or
	// serial) a delta batch rides through before it is applied.
	"persist.journal",
}

// SpanNameRegistered reports whether the catalog covers the span name.
func SpanNameRegistered(name string) bool {
	for _, entry := range SpanCatalog {
		if prefix, ok := strings.CutSuffix(entry, "*"); ok {
			if strings.HasPrefix(name, prefix) {
				return true
			}
		} else if name == entry {
			return true
		}
	}
	return false
}
