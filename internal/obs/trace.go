// Distributed tracing: trace/span IDs with parent→child links, carried
// through context so the existing obs.Span(ctx, name) call sites join
// the active trace without a signature change, propagated across
// process boundaries as a W3C traceparent header, and collected into a
// bounded in-memory store with tail sampling — errored and
// slow-over-threshold traces are always kept, the rest probabilistically
// (deterministic in the trace ID, so every process agrees).
//
// The flow: obs.Instrument starts a trace per request (adopting an
// inbound traceparent as a remote parent, minting a fresh trace
// otherwise) and stamps the trace ID on the response. StartSpan opens a
// child of the context's active span; Span is StartSpan for leaf stages.
// When the request's root span ends the trace is finalized: spans
// recorded along the way are folded into one Trace and the tail sampler
// decides retention. Remote-parented segments (a worker serving one
// coordinator RPC) are always retained — the sampling decision belongs
// to the process that owns the root — and served back over the worker's
// trace endpoint so the coordinator can merge the full tree.
package obs

import (
	"context"
	"encoding/hex"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceparentHeader is the W3C trace-context header carrying
// "00-<trace-id>-<span-id>-<flags>" on cross-process requests.
const TraceparentHeader = "traceparent"

// TraceIDHeader carries the request's trace ID on HTTP responses, so a
// client can immediately ask `anmat trace <id>` about its own request.
const TraceIDHeader = "X-Anmat-Trace-Id"

// SpanContext identifies one span within one trace: a 32-hex-char trace
// ID and a 16-hex-char span ID (the W3C trace-context field widths).
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Valid reports whether both IDs have the right width, are hex, and are
// not all-zero (the W3C invalid values).
func (sc SpanContext) Valid() bool {
	return validHexID(sc.TraceID, 32) && validHexID(sc.SpanID, 16)
}

func validHexID(s string, width int) bool {
	if len(s) != width {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// Traceparent renders the W3C header value for this span context,
// version 00 with the sampled flag set (retention is decided by the
// tail sampler, not up front, so every span is worth recording).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 exactly (four dash-separated fields, fixed widths) and
// rejects the reserved version ff, malformed widths, non-hex digits,
// and all-zero IDs — a malformed header means "no parent", never an
// error, per the spec's restart semantics.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 {
		return SpanContext{}, false
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || ver == "ff" {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(ver); err != nil {
		return SpanContext{}, false
	}
	if len(flags) != 2 {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(flags); err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: tid, SpanID: sid}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// NewTraceID mints a 32-hex-char random trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a 16-hex-char random span ID.
func NewSpanID() string { return randHex(8) }

// SpanRecord is one finished span as the trace store retains it.
type SpanRecord struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	Parent   string            `json:"parent_span_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Err      string            `json:"error,omitempty"`
}

// Trace is one retained trace: the root (or remote-parented segment
// root) span's identity plus every span recorded under the trace ID in
// this process. Spans from other processes are merged in by the trace
// API, not here.
type Trace struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Root is the root span's ID ("" for a remote segment whose true
	// root lives in another process).
	Root     string        `json:"root,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Errored  bool          `json:"errored,omitempty"`
	Slow     bool          `json:"slow,omitempty"`
	// Remote marks a segment collected under a remote parent (worker
	// side); such segments bypass tail sampling — retention is the
	// root-owning process's call.
	Remote bool         `json:"remote,omitempty"`
	Spans  []SpanRecord `json:"spans"`
}

// Bounds on the trace store. Pending traces (started, root not yet
// ended) and spans per trace are capped so a caller that never ends its
// root cannot grow the store without bound.
const (
	DefaultTraceCap  = 512
	maxPendingTraces = 1024
	maxSpansPerTrace = 512
)

// TraceStore is a bounded in-memory trace collector with tail sampling.
// One process-global instance (Traces) backs every span in the process.
type TraceStore struct {
	mu      sync.Mutex
	cap     int
	rate    float64 // probability of keeping an unremarkable trace
	pending map[string][]SpanRecord
	pendOrd []string // pending insertion order, for overflow eviction
	traces  map[string]*Trace
	order   []string // retained insertion order, FIFO eviction
}

// Traces is the process-global trace store.
var Traces = NewTraceStore(DefaultTraceCap)

// NewTraceStore returns an empty store retaining at most cap traces,
// keeping every trace the tail sampler offers (rate 1.0).
func NewTraceStore(cap int) *TraceStore {
	if cap < 1 {
		cap = 1
	}
	return &TraceStore{
		cap:     cap,
		rate:    1.0,
		pending: make(map[string][]SpanRecord),
		traces:  make(map[string]*Trace),
	}
}

// SetCap bounds the number of retained traces (minimum 1), evicting
// oldest-first if the store is already over the new bound.
func (ts *TraceStore) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	ts.mu.Lock()
	ts.cap = n
	ts.evictLocked()
	ts.mu.Unlock()
}

// SetSampleRate sets the probability (clamped to [0,1]) that a trace
// which neither errored nor ran slow is retained at finalization.
// Errored and slow traces are always retained regardless of the rate.
func (ts *TraceStore) SetSampleRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	ts.mu.Lock()
	ts.rate = p
	ts.mu.Unlock()
}

// Reset drops every retained and pending trace — the test-isolation
// hook.
func (ts *TraceStore) Reset() {
	ts.mu.Lock()
	ts.pending = make(map[string][]SpanRecord)
	ts.pendOrd = nil
	ts.traces = make(map[string]*Trace)
	ts.order = nil
	ts.mu.Unlock()
}

// record buffers one finished non-root span under its trace ID. If the
// trace was already finalized (a second segment of a merged worker
// trace), the span lands directly on the retained entry.
func (ts *TraceStore) record(rec SpanRecord) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if tr, ok := ts.traces[rec.TraceID]; ok && len(tr.Spans) < maxSpansPerTrace {
		tr.Spans = append(tr.Spans, rec)
		return
	}
	buf, ok := ts.pending[rec.TraceID]
	if !ok {
		if len(ts.pendOrd) >= maxPendingTraces {
			// A pending trace whose root never ends must not pin the
			// store: evict the oldest pending buffer.
			delete(ts.pending, ts.pendOrd[0])
			ts.pendOrd = ts.pendOrd[1:]
		}
		ts.pendOrd = append(ts.pendOrd, rec.TraceID)
	}
	if len(buf) < maxSpansPerTrace {
		ts.pending[rec.TraceID] = append(buf, rec)
	}
}

// finish finalizes one trace (or remote segment): the buffered spans
// plus the root record become a Trace, and the tail sampler decides
// retention — errored and slow always kept, remote segments always kept
// (the far root owns the decision), the rest kept with probability
// rate, deterministically in the trace ID.
func (ts *TraceStore) finish(root SpanRecord, remote bool) {
	slow := int64(root.Duration) >= currentSlowThreshold()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	spans := ts.pending[root.TraceID]
	delete(ts.pending, root.TraceID)
	for i, id := range ts.pendOrd {
		if id == root.TraceID {
			ts.pendOrd = append(ts.pendOrd[:i], ts.pendOrd[i+1:]...)
			break
		}
	}
	errored := root.Err != ""
	for _, s := range spans {
		if s.Err != "" {
			errored = true
		}
	}
	if tr, ok := ts.traces[root.TraceID]; ok {
		// A later segment of an already-retained trace (another worker
		// request under the same trace): merge.
		tr.Spans = append(tr.Spans, spans...)
		if len(tr.Spans) < maxSpansPerTrace {
			tr.Spans = append(tr.Spans, root)
		}
		tr.Errored = tr.Errored || errored
		tr.Slow = tr.Slow || slow
		return
	}
	if !remote && !errored && !slow && !sampleKeep(root.TraceID, ts.rate) {
		return
	}
	name := root.Name
	if route, ok := root.Attrs["route"]; ok && route != "" {
		// HTTP roots are all named "http.request" (span names stay a
		// bounded catalog); the route attribute is the useful display
		// name and the one the trace list filters on.
		name = route
	}
	tr := &Trace{
		ID: root.TraceID, Name: name, Start: root.Start,
		Duration: root.Duration, Errored: errored, Slow: slow, Remote: remote,
		Spans: append(spans, root),
	}
	if !remote {
		tr.Root = root.SpanID
	}
	ts.traces[root.TraceID] = tr
	ts.order = append(ts.order, root.TraceID)
	ts.evictLocked()
}

// evictLocked drops oldest retained traces until the store is within
// its bound. Callers hold ts.mu.
func (ts *TraceStore) evictLocked() {
	for len(ts.order) > ts.cap {
		delete(ts.traces, ts.order[0])
		ts.order = ts.order[1:]
	}
}

// sampleKeep is the deterministic tail-sampling coin: a trace ID is
// kept iff its hash falls under the rate, so concurrent processes (and
// re-runs) agree without coordination.
func sampleKeep(traceID string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(traceID))
	return float64(h.Sum64()%1_000_000) < rate*1_000_000
}

// Get returns a copy of one retained trace, with its spans sorted by
// start time.
func (ts *TraceStore) Get(id string) (Trace, bool) {
	ts.mu.Lock()
	tr, ok := ts.traces[id]
	if !ok {
		ts.mu.Unlock()
		return Trace{}, false
	}
	out := *tr
	out.Spans = append([]SpanRecord(nil), tr.Spans...)
	ts.mu.Unlock()
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].Start.Before(out.Spans[j].Start) })
	return out, true
}

// TraceFilter narrows a List call. The zero value matches everything.
type TraceFilter struct {
	// Route keeps traces whose root name contains the substring.
	Route string
	// MinDuration keeps traces at least this slow.
	MinDuration time.Duration
	// Limit caps the result count (0 = no cap). Most recent first.
	Limit int
}

// List returns retained traces matching the filter, most recent first,
// without their span bodies (summaries; fetch a full tree with Get).
func (ts *TraceStore) List(f TraceFilter) []Trace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Trace, 0, len(ts.order))
	for i := len(ts.order) - 1; i >= 0; i-- {
		tr := ts.traces[ts.order[i]]
		if f.Route != "" && !strings.Contains(tr.Name, f.Route) {
			continue
		}
		if tr.Duration < f.MinDuration {
			continue
		}
		cp := *tr
		cp.Spans = nil
		out = append(out, cp)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Len reports the number of retained traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// ---- context plumbing ----

// activeSpan is the context-carried handle of an in-flight span.
type activeSpan struct {
	sc     SpanContext
	parent string
	name   string
	start  time.Time
	root   bool // ends the trace (or remote segment) when it ends
	remote bool // trace is rooted in another process

	mu    sync.Mutex
	attrs map[string]string
	done  bool
}

type spanCtxKey struct{}
type remoteCtxKey struct{}
type ridCtxKey struct{}

// ContextWithRemote records a remote parent span context (an inbound
// traceparent) on the context; the next StartTrace joins that trace
// instead of minting a new one.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// ContextWithRequestID carries the request ID so outbound calls
// (cluster.RemoteNode) can forward it alongside the traceparent.
func ContextWithRequestID(ctx context.Context, rid string) context.Context {
	if rid == "" {
		return ctx
	}
	return context.WithValue(ctx, ridCtxKey{}, rid)
}

// RequestIDFrom returns the request ID carried by the context ("" when
// none).
func RequestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ridCtxKey{}).(string)
	return rid
}

// TraceIDFrom returns the active trace's ID ("" when the context
// carries no span).
func TraceIDFrom(ctx context.Context) string {
	if as, ok := ctx.Value(spanCtxKey{}).(*activeSpan); ok {
		return as.sc.TraceID
	}
	return ""
}

// TraceparentFrom renders the traceparent header value of the context's
// active span ("" when there is none) — the inject half of propagation.
func TraceparentFrom(ctx context.Context) string {
	if as, ok := ctx.Value(spanCtxKey{}).(*activeSpan); ok {
		return as.sc.Traceparent()
	}
	return ""
}

// SetSpanAttrs attaches key/value attribute pairs to the context's
// active span (no-op without one). Odd trailing keys are dropped.
func SetSpanAttrs(ctx context.Context, kv ...string) {
	as, ok := ctx.Value(spanCtxKey{}).(*activeSpan)
	if !ok {
		return
	}
	as.mu.Lock()
	if as.attrs == nil {
		as.attrs = make(map[string]string, len(kv)/2)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		as.attrs[kv[i]] = kv[i+1]
	}
	as.mu.Unlock()
}

// StartTrace opens the root span of a new trace — or, when the context
// carries a remote parent (ContextWithRemote), the root of a local
// segment of that remote trace. The returned context carries the span
// for StartSpan/Span call sites below it; the returned func ends the
// span, finalizes the trace, and runs the tail sampler. Pass a non-nil
// error to mark the trace errored (always retained).
func StartTrace(ctx context.Context, name string) (context.Context, func(err error)) {
	as := &activeSpan{name: name, start: time.Now(), root: true}
	if rsc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok {
		as.sc = SpanContext{TraceID: rsc.TraceID, SpanID: NewSpanID()}
		as.parent = rsc.SpanID
		as.remote = true
	} else {
		as.sc = SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	}
	ctx = context.WithValue(ctx, spanCtxKey{}, as)
	return ctx, func(err error) {
		rec, first := as.finishRecord(err)
		if !first {
			return
		}
		observeSpan(rec)
		Traces.finish(rec, as.remote)
	}
}

// StartSpan opens a child of the context's active span. Without one the
// span is detached: it still feeds the duration histogram and the slow
// ring, but no trace records it. The returned context carries the new
// span; the returned func ends it (non-nil error marks it, and its
// trace, errored).
func StartSpan(ctx context.Context, name string) (context.Context, func(err error)) {
	parent, traced := ctx.Value(spanCtxKey{}).(*activeSpan)
	as := &activeSpan{name: name, start: time.Now()}
	if traced {
		as.sc = SpanContext{TraceID: parent.sc.TraceID, SpanID: NewSpanID()}
		as.parent = parent.sc.SpanID
		ctx = context.WithValue(ctx, spanCtxKey{}, as)
	}
	return ctx, func(err error) {
		rec, first := as.finishRecord(err)
		if !first {
			return
		}
		observeSpan(rec)
		if traced {
			Traces.record(rec)
		}
	}
}

// finishRecord renders the span's record exactly once; later calls
// report first=false and change nothing.
func (as *activeSpan) finishRecord(err error) (SpanRecord, bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.done {
		return SpanRecord{}, false
	}
	as.done = true
	rec := SpanRecord{
		TraceID: as.sc.TraceID, SpanID: as.sc.SpanID, Parent: as.parent,
		Name: as.name, Start: as.start, Duration: time.Since(as.start),
		Attrs: as.attrs,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	return rec, true
}

func randHex(n int) string {
	b := make([]byte, n)
	if !fillRand(b) {
		return strings.Repeat("0", 2*n-1) + "1" // never all-zero
	}
	return hex.EncodeToString(b)
}
