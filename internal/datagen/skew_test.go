package datagen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestPhoneStateSkewedPinnedFixture regenerates the committed skewed
// fixture (testdata/phone_state_skewed.csv at the repo root, produced by
// `datagen -family phone -rows 48 -skew 1.3 -seed 7 -err 0.05`) and
// asserts byte-identity — the generator is deterministic under its seed,
// so shard tests consuming the fixture exercise exactly the pinned
// hot-block shape.
func TestPhoneStateSkewedPinnedFixture(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "phone_state_skewed.csv"))
	if err != nil {
		t.Fatal(err)
	}
	ds := PhoneStateSkewed(48, 0.05, 7, 1.3)
	var buf bytes.Buffer
	if err := ds.Table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("regenerated fixture diverges from the committed one:\n got %d bytes\nwant %d bytes", buf.Len(), len(want))
	}
}

// TestPhoneStateSkewConcentration asserts the Zipf option actually skews
// the block-key distribution: the dominant area code must cover far more
// of the table than the uniform share, and skew <= 1 must reproduce the
// uniform generator exactly.
func TestPhoneStateSkewConcentration(t *testing.T) {
	const n = 4000
	count := func(ds *Dataset) map[string]int {
		m := make(map[string]int)
		for r := 0; r < ds.Table.NumRows(); r++ {
			m[ds.Table.Cell(r, 0)[:3]]++
		}
		return m
	}
	max := func(m map[string]int) int {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		return best
	}
	uniform := max(count(PhoneState(n, 0, 11)))
	skewed := max(count(PhoneStateSkewed(n, 0, 11, 1.5)))
	if skewed < 2*uniform {
		t.Fatalf("skewed max block %d not clearly hotter than uniform max %d", skewed, uniform)
	}
	// skew <= 1 is the uniform generator, byte for byte.
	a, b := PhoneState(500, 0.01, 3), PhoneStateSkewed(500, 0.01, 3, 0.5)
	for r := 0; r < 500; r++ {
		if a.Table.Cell(r, 0) != b.Table.Cell(r, 0) || a.Table.Cell(r, 1) != b.Table.Cell(r, 1) {
			t.Fatalf("row %d diverges between PhoneState and skew<=1 PhoneStateSkewed", r)
		}
	}
}
