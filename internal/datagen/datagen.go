// Package datagen generates the synthetic stand-ins for the demo's
// datasets (see DESIGN.md §3). Each generator is deterministic under its
// seed and produces a clean table plus an error-injection step that
// records ground truth, so experiments can score precision/recall of the
// detected violations.
//
// Families:
//
//   - PhoneState  (D1): NANP phone numbers whose area code determines the
//     state, e.g. 850… → FL (Table 3, first block).
//   - NameGender  (D2): "Last, First M." full names whose first name
//     determines the gender (Table 3, second block).
//   - ZipCity     (D5): 5-digit ZIPs whose prefix determines the city and
//     state (Table 3, third/fourth blocks).
//   - EmployeeID  (intro): codes like F-9-107 where the letter determines
//     the department and the digit the grade.
//   - Compound    (ChEMBL-like): CHEMBL-prefixed ids with a type column.
package datagen

import (
	"fmt"
	"math/rand"

	"github.com/anmat/anmat/internal/table"
)

// Injected records one injected error: the cell, the clean value it
// replaced, and the dirty value written.
type Injected struct {
	Cell  table.CellRef
	Clean string
	Dirty string
}

// Dataset bundles a generated table with its injected-error ground truth.
type Dataset struct {
	Table    *table.Table
	Injected []Injected
}

// InjectedRows returns the set of row ids with at least one injected error.
func (d *Dataset) InjectedRows() map[int]bool {
	m := make(map[int]bool, len(d.Injected))
	for _, e := range d.Injected {
		m[e.Cell.Row] = true
	}
	return m
}

// areaCodes maps NANP area codes to states — the five Table 3 examples
// plus enough others for realistic diversity.
var areaCodes = []struct{ code, state string }{
	{"850", "FL"}, {"607", "NY"}, {"404", "GA"}, {"217", "IL"}, {"860", "CT"},
	{"212", "NY"}, {"213", "CA"}, {"305", "FL"}, {"312", "IL"}, {"415", "CA"},
	{"512", "TX"}, {"617", "MA"}, {"702", "NV"}, {"713", "TX"}, {"206", "WA"},
	{"303", "CO"}, {"602", "AZ"}, {"503", "OR"}, {"615", "TN"}, {"504", "LA"},
}

// states is the pool of wrong states used by error injection.
var states = []string{
	"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "IL",
	"IN", "IA", "KS", "KY", "LA", "MA", "MI", "MN", "MS", "MO", "NV", "NY",
	"OH", "OK", "OR", "PA", "SC", "TN", "TX", "WA",
}

// PhoneState generates the D1 stand-in: columns (phone, state). Phones
// are 10-digit NANP numbers; the area code functionally determines the
// state. errRate is the fraction of rows whose state is replaced with a
// different state.
func PhoneState(n int, errRate float64, seed int64) *Dataset {
	return PhoneStateSkewed(n, errRate, seed, 0)
}

// PhoneStateSkewed is PhoneState with a Zipf-distributed area-code
// choice: with skew s > 1 the area codes — the variable rule's block
// keys — follow a power law, so a few keys dominate the table. That is
// the workload that stresses hash-partitioned detection with hot-shard
// imbalance (the shard owning a dominant key hosts most rows) while
// results stay exact. skew <= 1 falls back to the uniform distribution.
func PhoneStateSkewed(n int, errRate float64, seed int64, skew float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pick := func() int { return rng.Intn(len(areaCodes)) }
	if skew > 1 {
		z := rand.NewZipf(rng, skew, 1, uint64(len(areaCodes)-1))
		pick = func() int { return int(z.Uint64()) }
	}
	t := table.MustNew("d1_phone_state", []string{"phone", "state"})
	for i := 0; i < n; i++ {
		ac := areaCodes[pick()]
		phone := ac.code + fmt.Sprintf("%07d", rng.Intn(10_000_000))
		t.MustAppend(phone, ac.state)
	}
	return injectCategorical(t, "state", states, errRate, rng)
}

// firstNames maps first names to the gender recorded for them; the five
// Table 3 names appear first.
var firstNames = []struct{ name, gender string }{
	{"Donald", "M"}, {"Stacey", "F"}, {"David", "M"}, {"Jerry", "M"}, {"Alan", "M"},
	{"John", "M"}, {"Susan", "F"}, {"Mary", "F"}, {"James", "M"}, {"Linda", "F"},
	{"Robert", "M"}, {"Patricia", "F"}, {"Michael", "M"}, {"Barbara", "F"},
	{"William", "M"}, {"Elizabeth", "F"}, {"Richard", "M"}, {"Jennifer", "F"},
	{"Thomas", "M"}, {"Margaret", "F"},
}

var lastNames = []string{
	"Holloway", "Jones", "Kimbell", "Mallack", "Otillio", "Smith", "Brown",
	"Wilson", "Taylor", "Anderson", "Clark", "Lewis", "Walker", "Hall",
	"Young", "King", "Wright", "Scott", "Green", "Baker",
}

// NameGender generates the D2 stand-in: columns (full_name, gender) with
// names shaped "Last, First" or "Last, First M." as in Table 3.
func NameGender(n int, errRate float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t := table.MustNew("d2_name_gender", []string{"full_name", "gender"})
	for i := 0; i < n; i++ {
		fn := firstNames[rng.Intn(len(firstNames))]
		ln := lastNames[rng.Intn(len(lastNames))]
		full := ln + ", " + fn.name
		if rng.Float64() < 0.5 {
			full += " " + string(rune('A'+rng.Intn(26))) + "."
		}
		t.MustAppend(full, fn.gender)
	}
	return injectCategorical(t, "gender", []string{"M", "F"}, errRate, rng)
}

// zipPrefixes maps 4-digit ZIP prefixes to (city, state); the Table 3
// examples (6060x → Chicago/IL, 95xxx → CA) are present.
var zipPrefixes = []struct{ prefix, city, state string }{
	{"6060", "Chicago", "IL"}, {"6061", "Chicago", "IL"}, {"6062", "Evanston", "IL"},
	{"9000", "Los Angeles", "CA"}, {"9001", "Los Angeles", "CA"},
	{"9560", "Auburn", "CA"}, {"9561", "Sacramento", "CA"},
	{"1000", "New York", "NY"}, {"1001", "New York", "NY"},
	{"0210", "Boston", "MA"}, {"0211", "Boston", "MA"},
	{"3010", "Atlanta", "GA"}, {"3030", "Atlanta", "GA"},
	{"7770", "Houston", "TX"}, {"7700", "Houston", "TX"},
	{"9810", "Seattle", "WA"}, {"9811", "Seattle", "WA"},
}

// ZipCity generates the D5 stand-in: columns (zip, city, state). The
// 4-digit zip prefix determines the city; the 2-digit prefix family
// determines the state. City errors are typos (the Table 3 errors are
// "Chicag", "C", "Chciago"); state errors are wrong codes or case slips
// like "lL".
func ZipCity(n int, errRate float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t := table.MustNew("d5_zip", []string{"zip", "city", "state"})
	for i := 0; i < n; i++ {
		zp := zipPrefixes[rng.Intn(len(zipPrefixes))]
		zip := zp.prefix + fmt.Sprintf("%d", rng.Intn(10))
		t.MustAppend(zip, zp.city, zp.state)
	}
	d := &Dataset{Table: t}
	ci, _ := t.ColIndex("city")
	si, _ := t.ColIndex("state")
	for r := 0; r < t.NumRows(); r++ {
		if rng.Float64() < errRate {
			clean := t.Cell(r, ci)
			dirty := typo(clean, rng)
			if dirty != clean {
				t.SetCell(r, ci, dirty)
				d.Injected = append(d.Injected, Injected{
					Cell: table.CellRef{Row: r, Column: "city"}, Clean: clean, Dirty: dirty,
				})
			}
		}
		if rng.Float64() < errRate {
			clean := t.Cell(r, si)
			dirty := stateError(clean, rng)
			if dirty != clean {
				t.SetCell(r, si, dirty)
				d.Injected = append(d.Injected, Injected{
					Cell: table.CellRef{Row: r, Column: "state"}, Clean: clean, Dirty: dirty,
				})
			}
		}
	}
	return d
}

// typo produces a Table 3-style city typo: truncation, character drop, or
// adjacent transposition.
func typo(s string, rng *rand.Rand) string {
	rs := []rune(s)
	if len(rs) < 2 {
		return s + "x"
	}
	switch rng.Intn(3) {
	case 0: // truncate ("Chicag", "C")
		k := 1 + rng.Intn(len(rs)-1)
		return string(rs[:k])
	case 1: // drop an interior character
		i := 1 + rng.Intn(len(rs)-1)
		return string(rs[:i]) + string(rs[i+1:])
	default: // transpose ("Chciago")
		i := rng.Intn(len(rs) - 1)
		rs[i], rs[i+1] = rs[i+1], rs[i]
		return string(rs)
	}
}

// stateError produces a wrong state code or a case slip such as "lL".
func stateError(s string, rng *rand.Rand) string {
	if rng.Intn(2) == 0 && len(s) == 2 {
		return string([]rune{rune(s[0]) + ('a' - 'A'), rune(s[1])})
	}
	for i := 0; i < 10; i++ {
		w := states[rng.Intn(len(states))]
		if w != s {
			return w
		}
	}
	return s
}

// departments maps the employee-ID letter to a department (the intro's
// "F-9-107": F → financial department, 9 → grade).
var departments = []struct{ letter, dept string }{
	{"F", "Finance"}, {"E", "Engineering"}, {"H", "HR"}, {"M", "Marketing"},
	{"S", "Sales"}, {"R", "Research"}, {"L", "Legal"}, {"O", "Operations"},
}

var grades = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9"}

// EmployeeID generates the intro stand-in: columns (emp_id, department,
// grade). IDs look like F-9-107; the letter determines the department and
// the first digit group the grade.
func EmployeeID(n int, errRate float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t := table.MustNew("employees", []string{"emp_id", "department", "grade"})
	for i := 0; i < n; i++ {
		d := departments[rng.Intn(len(departments))]
		g := grades[rng.Intn(len(grades))]
		id := fmt.Sprintf("%s-%s-%03d", d.letter, g, rng.Intn(1000))
		t.MustAppend(id, d.dept, "G"+g)
	}
	rngDept := rand.New(rand.NewSource(seed + 1))
	deptNames := make([]string, len(departments))
	for i, d := range departments {
		deptNames[i] = d.dept
	}
	out := injectCategorical(t, "department", deptNames, errRate, rngDept)
	gradeNames := make([]string, len(grades))
	for i, g := range grades {
		gradeNames[i] = "G" + g
	}
	out2 := injectCategorical(out.Table, "grade", gradeNames, errRate, rngDept)
	out2.Injected = append(out.Injected, out2.Injected...)
	return out2
}

// compoundTypes is the ChEMBL-like id → type mapping by prefix band.
var compoundTypes = []struct{ band, typ string }{
	{"1", "Small molecule"}, {"2", "Small molecule"}, {"3", "Protein"},
	{"4", "Antibody"}, {"5", "Oligonucleotide"}, {"6", "Small molecule"},
}

// Compound generates a ChEMBL-like stand-in: columns (compound_id,
// molecule_type) where ids look like CHEMBL153534 and the leading digit
// band of the numeric part determines the type.
func Compound(n int, errRate float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t := table.MustNew("chembl_compounds", []string{"compound_id", "molecule_type"})
	types := make([]string, 0, len(compoundTypes))
	seen := map[string]bool{}
	for _, ct := range compoundTypes {
		if !seen[ct.typ] {
			seen[ct.typ] = true
			types = append(types, ct.typ)
		}
	}
	for i := 0; i < n; i++ {
		ct := compoundTypes[rng.Intn(len(compoundTypes))]
		id := "CHEMBL" + ct.band + fmt.Sprintf("%05d", rng.Intn(100_000))
		t.MustAppend(id, ct.typ)
	}
	return injectCategorical(t, "molecule_type", types, errRate, rng)
}

// streetSuffixes and cityStates feed the Addresses generator.
var streetSuffixes = []string{"St", "Ave", "Blvd", "Rd", "Ln", "Dr"}

var cityStates = []struct{ city, state string }{
	{"Springfield", "IL"}, {"Chicago", "IL"}, {"Austin", "TX"},
	{"Houston", "TX"}, {"Miami", "FL"}, {"Tampa", "FL"},
	{"Albany", "NY"}, {"Buffalo", "NY"}, {"Denver", "CO"},
	{"Boulder", "CO"}, {"Salem", "OR"}, {"Portland", "OR"},
}

// Addresses generates a data.gov-style address table: columns (address,
// state) where address looks like "123 Main St, Springfield" and the city
// token (after the comma) determines the state. Token-mode discovery
// mines interior-token rules like `\A*,\ <Springfield> → IL`.
func Addresses(n int, errRate float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	streets := []string{"Main", "Oak", "Maple", "Washington", "Lake", "Hill", "Park", "Cedar"}
	t := table.MustNew("addresses", []string{"address", "state"})
	for i := 0; i < n; i++ {
		cs := cityStates[rng.Intn(len(cityStates))]
		addr := fmt.Sprintf("%d %s %s, %s",
			1+rng.Intn(9999),
			streets[rng.Intn(len(streets))],
			streetSuffixes[rng.Intn(len(streetSuffixes))],
			cs.city)
		t.MustAppend(addr, cs.state)
	}
	return injectCategorical(t, "state", states, errRate, rng)
}

// injectCategorical replaces the named column's value with a different
// member of pool in ~errRate of the rows, recording ground truth.
func injectCategorical(t *table.Table, col string, pool []string, errRate float64, rng *rand.Rand) *Dataset {
	d := &Dataset{Table: t}
	ci, ok := t.ColIndex(col)
	if !ok {
		return d
	}
	for r := 0; r < t.NumRows(); r++ {
		if rng.Float64() >= errRate {
			continue
		}
		clean := t.Cell(r, ci)
		dirty := clean
		for i := 0; i < 20 && dirty == clean; i++ {
			dirty = pool[rng.Intn(len(pool))]
		}
		if dirty == clean {
			continue
		}
		t.SetCell(r, ci, dirty)
		d.Injected = append(d.Injected, Injected{
			Cell: table.CellRef{Row: r, Column: col}, Clean: clean, Dirty: dirty,
		})
	}
	return d
}
