package datagen

import (
	"strings"
	"testing"
)

func TestPhoneStateShape(t *testing.T) {
	d := PhoneState(500, 0.01, 1)
	tb := d.Table
	if tb.NumRows() != 500 || tb.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	pi, _ := tb.ColIndex("phone")
	si, _ := tb.ColIndex("state")
	for r := 0; r < tb.NumRows(); r++ {
		phone := tb.Cell(r, pi)
		if len(phone) != 10 {
			t.Fatalf("phone %q not 10 digits", phone)
		}
		for _, c := range phone {
			if c < '0' || c > '9' {
				t.Fatalf("phone %q has non-digit", phone)
			}
		}
		if len(tb.Cell(r, si)) != 2 {
			t.Fatalf("state %q not 2 chars", tb.Cell(r, si))
		}
	}
}

func TestPhoneStateDeterministic(t *testing.T) {
	a := PhoneState(100, 0.05, 7)
	b := PhoneState(100, 0.05, 7)
	for r := 0; r < 100; r++ {
		if a.Table.Cell(r, 0) != b.Table.Cell(r, 0) || a.Table.Cell(r, 1) != b.Table.Cell(r, 1) {
			t.Fatalf("row %d differs between same-seed runs", r)
		}
	}
	if len(a.Injected) != len(b.Injected) {
		t.Error("injection not deterministic")
	}
	c := PhoneState(100, 0.05, 8)
	same := true
	for r := 0; r < 100; r++ {
		if a.Table.Cell(r, 0) != c.Table.Cell(r, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestInjectionGroundTruth(t *testing.T) {
	d := PhoneState(1000, 0.02, 3)
	if len(d.Injected) == 0 {
		t.Fatal("no errors injected at 2%")
	}
	// Roughly 2% ± generous slack.
	if len(d.Injected) > 60 {
		t.Errorf("too many injections: %d", len(d.Injected))
	}
	si, _ := d.Table.ColIndex("state")
	for _, e := range d.Injected {
		if e.Clean == e.Dirty {
			t.Errorf("injection %v did not change the value", e)
		}
		if got := d.Table.Cell(e.Cell.Row, si); got != e.Dirty {
			t.Errorf("table cell %d = %q, ground truth says %q", e.Cell.Row, got, e.Dirty)
		}
	}
	rows := d.InjectedRows()
	if len(rows) == 0 || len(rows) > len(d.Injected) {
		t.Errorf("InjectedRows = %d for %d injections", len(rows), len(d.Injected))
	}
}

func TestZeroErrorRate(t *testing.T) {
	d := PhoneState(200, 0, 4)
	if len(d.Injected) != 0 {
		t.Errorf("errRate 0 injected %d errors", len(d.Injected))
	}
}

func TestNameGenderShape(t *testing.T) {
	d := NameGender(300, 0.01, 5)
	ni, _ := d.Table.ColIndex("full_name")
	gi, _ := d.Table.ColIndex("gender")
	for r := 0; r < d.Table.NumRows(); r++ {
		name := d.Table.Cell(r, ni)
		if !strings.Contains(name, ", ") {
			t.Fatalf("name %q lacks 'Last, First' shape", name)
		}
		g := d.Table.Cell(r, gi)
		if g != "M" && g != "F" {
			t.Fatalf("gender %q", g)
		}
	}
}

func TestZipCityShape(t *testing.T) {
	d := ZipCity(300, 0.02, 6)
	zi, _ := d.Table.ColIndex("zip")
	for r := 0; r < d.Table.NumRows(); r++ {
		zip := d.Table.Cell(r, zi)
		if len(zip) != 5 {
			t.Fatalf("zip %q not 5 digits", zip)
		}
	}
	// City and state errors both appear with a fair sample.
	var cityErr, stateErr bool
	for _, e := range d.Injected {
		switch e.Cell.Column {
		case "city":
			cityErr = true
		case "state":
			stateErr = true
		}
	}
	if !cityErr || !stateErr {
		t.Errorf("expected both error kinds, city=%v state=%v", cityErr, stateErr)
	}
}

func TestEmployeeIDShape(t *testing.T) {
	d := EmployeeID(300, 0.01, 7)
	ii, _ := d.Table.ColIndex("emp_id")
	for r := 0; r < d.Table.NumRows(); r++ {
		id := d.Table.Cell(r, ii)
		parts := strings.Split(id, "-")
		if len(parts) != 3 || len(parts[0]) != 1 || len(parts[1]) != 1 || len(parts[2]) != 3 {
			t.Fatalf("emp_id %q malformed", id)
		}
	}
}

func TestCompoundShape(t *testing.T) {
	d := Compound(300, 0.01, 8)
	ci, _ := d.Table.ColIndex("compound_id")
	for r := 0; r < d.Table.NumRows(); r++ {
		id := d.Table.Cell(r, ci)
		if !strings.HasPrefix(id, "CHEMBL") {
			t.Fatalf("compound id %q", id)
		}
	}
	if len(d.Injected) == 0 {
		t.Error("no type errors injected")
	}
}

func TestAddressesShape(t *testing.T) {
	d := Addresses(300, 0.01, 10)
	ai, _ := d.Table.ColIndex("address")
	si, _ := d.Table.ColIndex("state")
	for r := 0; r < d.Table.NumRows(); r++ {
		addr := d.Table.Cell(r, ai)
		if !strings.Contains(addr, ", ") {
			t.Fatalf("address %q lacks city part", addr)
		}
		if len(d.Table.Cell(r, si)) != 2 {
			t.Fatalf("state %q", d.Table.Cell(r, si))
		}
	}
	if len(d.Injected) == 0 {
		t.Error("no state errors injected")
	}
}

func TestTypoNeverIdentityForLongStrings(t *testing.T) {
	d := ZipCity(2000, 0.05, 9)
	for _, e := range d.Injected {
		if e.Clean == e.Dirty {
			t.Errorf("typo injection left value unchanged: %+v", e)
		}
	}
}
