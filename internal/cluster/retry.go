// Bounded retry with exponential backoff: the cluster's one answer to
// transient transport failure. Every remote call a coordinator makes is
// idempotent at the worker (batches carry the global sequence number;
// reads are pure), so retrying a timed-out request is always safe — the
// only policy question is how long to keep trying before declaring the
// worker dead and failing over.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Backoff is a bounded retry policy: up to Tries attempts, sleeping
// Base·2ⁱ between attempt i and i+1, capped at Max per sleep.
type Backoff struct {
	Tries int
	Base  time.Duration
	Max   time.Duration
}

// DefaultBackoff returns the coordinator's default worker-call policy:
// 3 attempts, 50ms → 100ms between them. With the default 5s request
// timeout a dead worker is declared in well under half a minute.
func DefaultBackoff() Backoff {
	return Backoff{Tries: 3, Base: 50 * time.Millisecond, Max: time.Second}
}

// permanentError wraps an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent marks an error as non-retryable: Do returns it immediately
// (unwrapped) instead of burning the remaining attempts. Use it for
// responses that prove the worker is alive but the request can never
// succeed — a validation rejection, a sequence-gap conflict.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// RetryError is Do's giving-up report: how many attempts were made and
// the last underlying error, plus the context error when a
// cancellation mid-wait ended the loop early. Unwrap exposes both, so
// errors.Is/As reach the last attempt's cause (a net.OpError, a worker
// error envelope) as well as context.Canceled/DeadlineExceeded.
type RetryError struct {
	Attempts int
	Last     error
	Ctx      error // non-nil when a context cancellation cut the wait
}

func (e *RetryError) Error() string {
	if e.Ctx != nil {
		return fmt.Sprintf("%v after %d attempt(s): %v", e.Ctx, e.Attempts, e.Last)
	}
	return fmt.Sprintf("after %d attempt(s): %v", e.Attempts, e.Last)
}

// Unwrap exposes the last attempt's error and, when set, the context
// error.
func (e *RetryError) Unwrap() []error {
	if e.Ctx != nil {
		return []error{e.Last, e.Ctx}
	}
	return []error{e.Last}
}

// Do runs fn until it succeeds, returns a permanent error, exhausts the
// attempt budget, or the context ends. Giving up returns a *RetryError
// carrying the attempt count and the last attempt's underlying error —
// on the context-cancellation path too, so "retries exhausted" is never
// the whole story the operator sees.
func (b Backoff) Do(ctx context.Context, fn func() error) error {
	tries := b.Tries
	if tries < 1 {
		tries = 1
	}
	delay := b.Base
	var last error
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if attempt >= tries {
			retryExhausted.Inc()
			return &RetryError{Attempts: attempt, Last: last}
		}
		if delay <= 0 {
			delay = time.Millisecond
		}
		if b.Max > 0 && delay > b.Max {
			delay = b.Max
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return &RetryError{Attempts: attempt, Last: last, Ctx: ctx.Err()}
		case <-t.C:
		}
		retrySleeps.Inc()
		delay *= 2
	}
}
