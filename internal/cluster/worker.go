// The shard worker: one shard.LocalNode behind the /shard/v1 HTTP API.
// A worker boots empty and inert; the coordinator pushes its state over
// /init (or /restore after a failover), then drives it with translated
// batches. Batches are idempotent by sequence number — the worker caches
// the last applied batch's response and replays it on redelivery, so a
// coordinator whose request timed out after the worker applied it can
// retry blindly without double-applying.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/anmat/anmat/internal/obs"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/wal"
)

// maxBootBody caps an /init or /restore body: a full shard snapshot
// plus its WAL tail, bounded at 4x the single-record limit.
const maxBootBody = 4 * wal.MaxRecord

// bodyStatus maps a request-body decode error to 413 when the
// MaxBytesReader cap tripped, 400 otherwise.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// Worker serves one shard over HTTP. The zero value is not usable; see
// NewWorker. All handlers serialize on an internal lock — a worker is
// driven by a single coordinator, so there is no concurrency to win.
type Worker struct {
	mu sync.Mutex
	// shardID/of pin the worker to one topology slot when >= 0: an init
	// for a different slot is refused, catching miswired coordinators.
	shardID, of int
	node        *shard.LocalNode
	rules       []*pfd.PFD
	// curShard/curOf record the slot the live node was booted for (equal
	// to shardID/of when pinned).
	curShard, curOf int
	// epoch is the coordinator identity the live state was booted under;
	// requests fenced against it (see the proto.go epoch-fencing section).
	epoch string
	seq   int64
	// last is the cached response of the batch that advanced the worker
	// to seq, replayed on idempotent redelivery.
	last *ApplyResponse
	// poisoned marks a booted state discarded after a failed apply: the
	// worker answers 412 until a /restore, and /healthz says so — before
	// this flag, a poisoned worker was indistinguishable from a healthy
	// one on the health probe until the next apply's 412.
	poisoned bool
	logf     func(format string, args ...any)
	// access, when set, instruments the HTTP handler with request
	// metrics and structured request logging (see SetAccessLog).
	access *slog.Logger
}

// NewWorker returns a worker pinned to shard shardID of of; pass -1, -1
// to accept any slot from the first init.
func NewWorker(shardID, of int) *Worker {
	return &Worker{shardID: shardID, of: of, logf: log.Printf}
}

// SetLogf redirects the worker's request log (default log.Printf; nil
// silences it).
func (w *Worker) SetLogf(fn func(format string, args ...any)) {
	if fn == nil {
		fn = func(string, ...any) {}
	}
	w.logf = fn
}

// SetAccessLog enables structured per-request logging (with request
// IDs) on the worker's HTTP handler. Call before Handler.
func (w *Worker) SetAccessLog(l *slog.Logger) { w.access = l }

// Handler returns the worker's HTTP handler: the /shard/v1 API plus the
// top-level /healthz probe and the worker's own /metrics endpoint.
// Every route is instrumented with request counters and latency
// histograms (and request logging when SetAccessLog was called).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.Handle(route, obs.Instrument(route, h, w.access))
	}
	handle(APIPrefix+"/init", w.handleBoot)
	handle(APIPrefix+"/restore", w.handleBoot)
	handle(APIPrefix+"/apply", w.handleApply)
	handle(APIPrefix+"/violations", w.handleViolations)
	handle(APIPrefix+"/stats", w.handleStats)
	handle(APIPrefix+"/snapshot", w.handleSnapshot)
	// Observability routes stay passive: probes and trace reads must not
	// mint traces of their own (steady polling would churn the store).
	mux.Handle("GET "+APIPrefix+"/trace/{id}",
		obs.InstrumentPassive(APIPrefix+"/trace/{id}", http.HandlerFunc(w.handleTrace), w.access))
	mux.Handle("/healthz",
		obs.InstrumentPassive("/healthz", http.HandlerFunc(w.handleHealthz), w.access))
	mux.Handle("GET /metrics", obs.Default.Handler())
	return mux
}

// handleTrace serves the worker-retained segment of one trace: the spans
// this process recorded under a coordinator-supplied traceparent. The
// coordinator's trace API fetches these to merge the full tree.
func (w *Worker) handleTrace(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := obs.Traces.Get(id)
	if !ok {
		writeError(rw, http.StatusNotFound, "trace %s not found", id)
		return
	}
	writeJSON(rw, http.StatusOK, tr)
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeError(rw http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(rw, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleBoot initializes or replaces the worker's shard state. /init and
// /restore share semantics — restore exists so failover reads naturally
// in coordinator code and logs.
func (w *Worker) handleBoot(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BootRequest
	// A boot body carries a full shard snapshot, so it gets a generous
	// cap — but still a cap: an unbounded hostile body must 413, not OOM
	// the worker.
	r.Body = http.MaxBytesReader(rw, r.Body, maxBootBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, bodyStatus(err), "decode boot: %v", err)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.shardID >= 0 && (req.Boot.Shard != w.shardID || req.Boot.Of != w.of) {
		writeError(rw, http.StatusConflict, "worker pinned to shard %d/%d, boot is for %d/%d",
			w.shardID, w.of, req.Boot.Shard, req.Boot.Of)
		return
	}
	node, err := shard.NewLocalNode(req.Boot, req.Rules)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "boot: %v", err)
		return
	}
	if w.epoch != "" && req.Epoch != w.epoch {
		// Ownership transfer: a boot under a new epoch replaces the state
		// and fences the previous coordinator out (its applies 409 from
		// here on instead of silently mutating the new owner's state).
		w.logf("worker shard %d/%d: epoch %q takes over from %q", req.Boot.Shard, req.Boot.Of, req.Epoch, w.epoch)
	}
	w.node, w.rules, w.seq, w.last = node, req.Rules, req.Seq, nil
	w.curShard, w.curOf, w.epoch = req.Boot.Shard, req.Boot.Of, req.Epoch
	w.poisoned = false
	workerPoisoned.WithLabelValues(strconv.Itoa(w.curShard)).Set(0)
	workerBoots.WithLabelValues(strings.TrimPrefix(r.URL.Path, APIPrefix+"/")).Inc()
	w.logf("worker shard %d/%d: booted %d rows at seq %d (%s)",
		req.Boot.Shard, req.Boot.Of, len(req.Boot.Rows), req.Seq, r.URL.Path)
	writeJSON(rw, http.StatusOK, w.stateLocked())
}

// checkEpochLocked fences a request against the epoch the live state was
// booted under, writing a 409 (permanent at the client) on conflict.
// Strict mode — applies, which mutate — also rejects a missing header;
// lenient mode — reads — lets header-less operator requests through.
// Callers hold w.mu; reports whether the request may proceed.
func (w *Worker) checkEpochLocked(rw http.ResponseWriter, r *http.Request, strict bool) bool {
	got := r.Header.Get(EpochHeader)
	if w.epoch == "" || got == w.epoch || (got == "" && !strict) {
		return true
	}
	epochFences.Inc()
	writeError(rw, http.StatusConflict, "worker claimed by epoch %q, request carries %q — its coordinator was superseded", w.epoch, got)
	return false
}

// handleApply applies one translated batch, idempotently by sequence
// number: redelivery of the last applied batch replays the cached
// response without touching the engine; anything else out of order is a
// 409 the coordinator must not retry.
func (w *Worker) handleApply(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var nb shard.NodeBatch
	// One translated batch can never legitimately exceed the WAL record
	// bound the coordinator journals it under.
	r.Body = http.MaxBytesReader(rw, r.Body, wal.MaxRecord)
	if err := json.NewDecoder(r.Body).Decode(&nb); err != nil {
		writeError(rw, bodyStatus(err), "decode batch: %v", err)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.checkEpochLocked(rw, r, true) {
		return
	}
	if w.node == nil {
		if w.poisoned {
			writeError(rw, http.StatusPreconditionFailed, "worker shard %d/%d poisoned by a failed apply; awaiting /restore", w.curShard, w.curOf)
			return
		}
		writeError(rw, http.StatusPreconditionFailed, "worker not initialized")
		return
	}
	// The coordinator only sends batches that touch this shard, so the
	// worker's sequence is sparse in the global timeline: any seq above
	// the current one is the next batch. At or below it is a redelivery —
	// the last applied batch replays from cache (a retry after a lost
	// response), anything older is a conflict the client must not retry.
	switch {
	case nb.Seq == w.seq && w.last != nil:
		workerRedeliveries.WithLabelValues(strconv.Itoa(w.curShard)).Inc()
		w.logf("worker shard %d/%d: redelivery of batch %d, replaying cached response", w.curShard, w.curOf, nb.Seq)
		writeJSON(rw, http.StatusOK, w.last)
		return
	case nb.Seq <= w.seq:
		writeError(rw, http.StatusConflict, "batch seq %d not after worker seq %d", nb.Seq, w.seq)
		return
	}
	obs.SetSpanAttrs(r.Context(),
		"shard", strconv.Itoa(w.curShard),
		"seq", strconv.FormatInt(nb.Seq, 10))
	t0 := time.Now()
	diffs, err := w.node.Apply(r.Context(), nb)
	shardLbl := strconv.Itoa(w.curShard)
	workerApplyDur.WithLabelValues(shardLbl).Observe(time.Since(t0).Seconds())
	if err != nil {
		// LocalNode.Apply mutates op by op, so an error on op i leaves ops
		// 0..i-1 applied — and the 500 below is retryable at the client, so
		// a blind redelivery would re-apply the whole batch onto that
		// half-mutated state. Poison the node: every later call answers 412
		// (permanent) until a /restore re-boots, sending the coordinator
		// straight to the WAL-backed failover path.
		w.node, w.last, w.poisoned = nil, nil, true
		workerPoisoned.WithLabelValues(shardLbl).Set(1)
		w.logf("worker shard %d/%d: apply batch %d failed, state poisoned pending restore: %v",
			w.curShard, w.curOf, nb.Seq, err)
		writeError(rw, http.StatusInternalServerError, "apply batch %d: %v", nb.Seq, err)
		return
	}
	w.seq = nb.Seq
	w.last = &ApplyResponse{Seq: nb.Seq, Diffs: diffs}
	workerApplied.WithLabelValues(shardLbl).Inc()
	writeJSON(rw, http.StatusOK, w.last)
}

// handleViolations returns the maintained set (globalized). With ?since=
// it answers in cursor form: an empty diff when the cursor is current, a
// reset snapshot otherwise — workers keep no diff history (the
// coordinator owns the merged cursor log), so any stale cursor resolves
// to a full resync, which is always correct.
func (w *Worker) handleViolations(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.checkEpochLocked(rw, r, false) {
		return
	}
	if w.node == nil {
		writeError(rw, http.StatusPreconditionFailed, "worker not initialized")
		return
	}
	vios, err := w.node.Violations()
	if err != nil {
		writeError(rw, http.StatusInternalServerError, "violations: %v", err)
		return
	}
	resp := ViolationsResponse{Seq: w.seq}
	if s := r.URL.Query().Get("since"); s != "" {
		cursor, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			writeError(rw, http.StatusBadRequest, "since: %v", err)
			return
		}
		st, _ := w.node.Stats()
		d := &stream.Diff{Seq: w.seq, Rows: st.Rows}
		if cursor != w.seq {
			d.Reset = true
			d.Added = vios
		}
		resp.Diff = d
	} else {
		resp.Violations = vios
	}
	writeJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.checkEpochLocked(rw, r, false) {
		return
	}
	if w.node == nil {
		writeError(rw, http.StatusPreconditionFailed, "worker not initialized")
		return
	}
	st, err := w.node.Stats()
	if err != nil {
		writeError(rw, http.StatusInternalServerError, "stats: %v", err)
		return
	}
	writeJSON(rw, http.StatusOK, st)
}

// handleSnapshot dumps the worker's current state as a BootRequest —
// re-bootable on another worker, and the operator's window into what a
// shard holds.
func (w *Worker) handleSnapshot(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.checkEpochLocked(rw, r, false) {
		return
	}
	if w.node == nil {
		writeError(rw, http.StatusPreconditionFailed, "worker not initialized")
		return
	}
	t := w.node.Table()
	boot := shard.NodeBoot{
		Name:     t.Name(),
		Columns:  t.Columns(),
		Rows:     make([][]string, t.NumRows()),
		GlobalOf: w.node.GlobalOf(),
		Shard:    w.curShard,
		Of:       w.curOf,
	}
	for i := 0; i < t.NumRows(); i++ {
		boot.Rows[i] = t.Row(i)
	}
	writeJSON(rw, http.StatusOK, BootRequest{Boot: boot, Rules: w.rules, Seq: w.seq, Epoch: w.epoch})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	defer w.mu.Unlock()
	writeJSON(rw, http.StatusOK, w.stateLocked())
}

// stateLocked renders the worker's StateResponse; callers hold w.mu.
// A poisoned worker still reports the slot and epoch it was booted for
// — the probe must say *which* shard needs a /restore, not regress to
// looking like a never-initialized spare.
func (w *Worker) stateLocked() StateResponse {
	st := StateResponse{OK: true, Shard: w.shardID, Of: w.of, Seq: w.seq,
		Epoch: w.epoch, Poisoned: w.poisoned}
	if w.node != nil {
		st.Ready = true
		st.Shard, st.Of = w.curShard, w.curOf
		st.Rows = w.node.Table().NumRows()
	} else if w.poisoned {
		st.Shard, st.Of = w.curShard, w.curOf
	}
	return st
}
