package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/anmat/anmat/internal/detect"
	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/table"
	"github.com/anmat/anmat/internal/tableau"
)

// clusterKs is the worker-count matrix the equivalence tests run at.
var clusterKs = []int{1, 2, 4, 8}

func testRules() []*pfd.PFD {
	return []*pfd.PFD{
		pfd.New("T", "code", "city", tableau.New(
			tableau.Row{LHS: pattern.MustParseConstrained(`<90>\D{3}`), RHS: "LA"},
			tableau.Row{LHS: pattern.MustParseConstrained(`<\D{2}>\D{3}`), RHS: tableau.Wildcard},
		)),
		pfd.New("T", "phone", "state", tableau.New(
			tableau.Row{LHS: pattern.MustParseConstrained(`<85>\D{3}`), RHS: "FL"},
			tableau.Row{LHS: pattern.MustParseConstrained(`<\D+>\D+`), RHS: tableau.Wildcard},
		)),
	}
}

func randRow(rng *rand.Rand) []string {
	codes := []string{"90001", "90002", "10001", "85777", "85778", "abcde", ""}
	cities := []string{"LA", "NY", "SF", ""}
	phones := []string{"85123", "85124", "21111", "21112", "90909", "xyz"}
	states := []string{"FL", "NY", "CA"}
	return []string{
		codes[rng.Intn(len(codes))],
		cities[rng.Intn(len(cities))],
		phones[rng.Intn(len(phones))],
		states[rng.Intn(len(states))],
	}
}

func testTable(rng *rand.Rand, rows int) *table.Table {
	t := table.MustNew("T", []string{"code", "city", "phone", "state"})
	for i := 0; i < rows; i++ {
		t.MustAppend(randRow(rng)...)
	}
	return t
}

// randBatch draws one non-empty valid-shaped batch against the table's
// current size (the same generator as the shard package's property test).
func randBatch(rng *rand.Rand, tbl *table.Table) stream.Batch {
	columns := tbl.Columns()
	var batch stream.Batch
	for len(batch) == 0 {
		for _, kind := range []stream.OpKind{stream.OpAppend, stream.OpUpdate, stream.OpDelete} {
			if rng.Intn(3) != 0 {
				continue
			}
			switch kind {
			case stream.OpAppend:
				n := 1 + rng.Intn(3)
				rows := make([][]string, n)
				for i := range rows {
					rows[i] = randRow(rng)
				}
				batch = append(batch, stream.AppendRows(rows...))
			case stream.OpUpdate:
				if tbl.NumRows() == 0 {
					continue
				}
				batch = append(batch, stream.UpdateCell(
					rng.Intn(tbl.NumRows()),
					columns[rng.Intn(len(columns))],
					randRow(rng)[rng.Intn(4)],
				))
			case stream.OpDelete:
				if tbl.NumRows() < 3 {
					continue
				}
				n := 1 + rng.Intn(2)
				drop := make([]int, n)
				for i := range drop {
					drop[i] = rng.Intn(tbl.NumRows())
				}
				batch = append(batch, stream.DeleteRows(drop...))
			}
		}
	}
	return batch
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func fullDetect(t *testing.T, tbl *table.Table, rules []*pfd.PFD) []pfd.Violation {
	t.Helper()
	res, err := detect.New(tbl, detect.Options{}).DetectAllContext(context.Background(), rules, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Violations
}

// startWorkers spins up n shard workers as real HTTP servers on loopback
// TCP ports and returns their base URLs. Worker request logs go to the
// test log.
func startWorkers(t *testing.T, n, of int) []string {
	t.Helper()
	urls := make([]string, n)
	for s := 0; s < n; s++ {
		w := NewWorker(s, of)
		w.SetLogf(t.Logf)
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[s] = srv.URL
	}
	return urls
}

func fastClient() ClientOptions {
	return ClientOptions{
		Timeout: 2 * time.Second,
		Retry:   Backoff{Tries: 3, Base: time.Millisecond, Max: 10 * time.Millisecond},
	}
}

// TestClusterEquivalence replays random delta scripts through a cluster
// coordinator whose K workers are real HTTP servers on loopback TCP, and
// after every batch asserts the merged violation set is byte-identical to
// (a) a fresh full detection over the global table, (b) a single-engine
// replica fed the same batches, and (c) an in-process K-shard coordinator
// fed the same batches — for K ∈ {1,2,4,8}.
func TestClusterEquivalence(t *testing.T) {
	for _, k := range clusterKs {
		for seed := int64(0); seed < 3; seed++ {
			k, seed := k, seed
			t.Run(fmt.Sprintf("k%d/seed%d", k, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				tbl := testTable(rng, 12)
				rules := testRules()

				replicaTbl := tbl.Clone()
				replica, err := stream.NewEngine(replicaTbl, rules)
				if err != nil {
					t.Fatal(err)
				}
				inprocTbl := tbl.Clone()
				inproc, err := shard.New(inprocTbl, rules, k)
				if err != nil {
					t.Fatal(err)
				}

				c, err := New(tbl, rules, startWorkers(t, k, k), Options{Client: fastClient()})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if got, want := mustJSON(t, c.Violations()), mustJSON(t, fullDetect(t, tbl, rules)); got != want {
					t.Fatalf("bootstrap diverged:\n got %s\nwant %s", got, want)
				}

				for step := 0; step < 25; step++ {
					batch := randBatch(rng, tbl)
					diff, err := c.Apply(batch)
					if err != nil {
						// Random scripts can produce out-of-range ops; a rejected
						// batch must be a no-op everywhere.
						if got, want := mustJSON(t, c.Violations()), mustJSON(t, fullDetect(t, tbl, rules)); got != want {
							t.Fatalf("step %d: rejected batch mutated state", step)
						}
						continue
					}
					rdiff, err := replica.Apply(batch)
					if err != nil {
						t.Fatalf("step %d: replica rejected a batch the cluster accepted: %v", step, err)
					}
					if _, err := inproc.Apply(batch); err != nil {
						t.Fatalf("step %d: in-process coordinator rejected a batch the cluster accepted: %v", step, err)
					}
					got := mustJSON(t, c.Violations())
					if want := mustJSON(t, fullDetect(t, tbl, rules)); got != want {
						t.Fatalf("step %d: cluster diverged from full detection:\n got %s\nwant %s", step, got, want)
					}
					if want := mustJSON(t, replica.Violations()); got != want {
						t.Fatalf("step %d: cluster diverged from single engine", step)
					}
					if want := mustJSON(t, inproc.Violations()); got != want {
						t.Fatalf("step %d: cluster diverged from in-process coordinator", step)
					}
					if mustJSON(t, diff.Added) != mustJSON(t, rdiff.Added) || mustJSON(t, diff.Removed) != mustJSON(t, rdiff.Removed) {
						t.Fatalf("step %d: cluster diff diverged from single-engine diff", step)
					}
				}
			})
		}
	}
}

// flakyTransport wraps the default transport with injected failures:
// some requests are lost before they reach the worker, and some
// responses are lost after the worker processed the request — the case
// that makes blind retries dangerous without seq idempotency.
type flakyTransport struct {
	mu       sync.Mutex
	rng      *rand.Rand
	dropReq  float64
	dropResp float64

	lostRequests  int
	lostResponses int
}

func (ft *flakyTransport) roll(p float64) bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.rng.Float64() < p
}

func (ft *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if ft.roll(ft.dropReq) {
		ft.mu.Lock()
		ft.lostRequests++
		ft.mu.Unlock()
		return nil, errors.New("flaky: request lost")
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if ft.roll(ft.dropResp) {
		resp.Body.Close()
		ft.mu.Lock()
		ft.lostResponses++
		ft.mu.Unlock()
		return nil, errors.New("flaky: response lost")
	}
	return resp, nil
}

// TestSeqIdempotencyUnderFlakyTransport drives a cluster through a
// transport that loses requests and responses at a 20% rate each. Lost
// responses force the client to redeliver batches the worker already
// applied; the worker's seq idempotency must absorb them — any duplicate
// application would corrupt the maintained set and break byte-identity.
func TestSeqIdempotencyUnderFlakyTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := testTable(rng, 12)
	rules := testRules()
	replicaTbl := tbl.Clone()
	replica, err := stream.NewEngine(replicaTbl, rules)
	if err != nil {
		t.Fatal(err)
	}

	ft := &flakyTransport{rng: rand.New(rand.NewSource(99)), dropReq: 0.2, dropResp: 0.2}
	opts := Options{Client: ClientOptions{
		Timeout:    2 * time.Second,
		Retry:      Backoff{Tries: 25, Base: time.Microsecond, Max: time.Millisecond},
		HTTPClient: &http.Client{Transport: ft},
	}}
	c, err := New(tbl, rules, startWorkers(t, 2, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	applied := 0
	for step := 0; step < 30; step++ {
		batch := randBatch(rng, tbl)
		if _, err := c.Apply(batch); err != nil {
			if got, want := mustJSON(t, c.Violations()), mustJSON(t, fullDetect(t, tbl, rules)); got != want {
				t.Fatalf("step %d: rejected batch mutated state", step)
			}
			continue
		}
		applied++
		if _, err := replica.Apply(batch); err != nil {
			t.Fatalf("step %d: replica rejected: %v", step, err)
		}
		if got, want := mustJSON(t, c.Violations()), mustJSON(t, replica.Violations()); got != want {
			t.Fatalf("step %d: flaky-transport cluster diverged from single engine:\n got %s\nwant %s", step, got, want)
		}
	}
	if applied == 0 {
		t.Fatal("script applied no batches")
	}
	if c.Seq() != int64(applied) {
		t.Fatalf("coordinator seq %d after %d applied batches", c.Seq(), applied)
	}
	ft.mu.Lock()
	lostReq, lostResp := ft.lostRequests, ft.lostResponses
	ft.mu.Unlock()
	if lostReq == 0 || lostResp == 0 {
		t.Fatalf("flaky transport exercised nothing (lost %d requests, %d responses)", lostReq, lostResp)
	}
	t.Logf("flaky transport: %d requests lost, %d responses lost (redeliveries), %d batches applied once each",
		lostReq, lostResp, applied)
}

// TestFailoverRestoresFromWAL kills one worker mid-script and verifies
// the coordinator rehydrates a spare from snapshot + WAL replay: byte
// identity continues, and a violations-since cursor taken before the
// failure still resolves exactly (the coordinator's diff log survives
// the swap).
func TestFailoverRestoresFromWAL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := testTable(rng, 12)
	rules := testRules()
	replicaTbl := tbl.Clone()
	replica, err := stream.NewEngine(replicaTbl, rules)
	if err != nil {
		t.Fatal(err)
	}

	const k = 2
	workers := make([]*httptest.Server, k)
	urls := make([]string, k)
	for s := 0; s < k; s++ {
		w := NewWorker(s, k)
		w.SetLogf(t.Logf)
		workers[s] = httptest.NewServer(w.Handler())
		defer workers[s].Close()
		urls[s] = workers[s].URL
	}
	// The spare accepts any slot (shard -1 = unpinned).
	spareW := NewWorker(-1, -1)
	spareW.SetLogf(t.Logf)
	spare := httptest.NewServer(spareW.Handler())
	defer spare.Close()

	dir := t.TempDir()
	c, err := New(tbl, rules, urls, Options{
		Dir:    dir,
		Spares: []string{spare.URL},
		Client: fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Snapshot the merged set at the pre-failure cursor: the Since diff
	// taken after the failover must fold this snapshot exactly onto the
	// then-current set.
	preSet := make(map[string]pfd.Violation)
	for _, v := range c.Violations() {
		preSet[v.Key()] = v
	}
	cursor := c.Seq()

	step := func(label string, steps int) {
		t.Helper()
		for i := 0; i < steps; i++ {
			batch := randBatch(rng, tbl)
			if _, err := c.Apply(batch); err != nil {
				continue
			}
			if _, err := replica.Apply(batch); err != nil {
				t.Fatalf("%s %d: replica rejected: %v", label, i, err)
			}
			if got, want := mustJSON(t, c.Violations()), mustJSON(t, replica.Violations()); got != want {
				t.Fatalf("%s %d: cluster diverged from single engine:\n got %s\nwant %s", label, i, got, want)
			}
		}
	}

	step("pre-kill", 8)

	// Kill worker 1 hard: in-flight and future connections die.
	workers[1].CloseClientConnections()
	workers[1].Close()

	step("post-kill", 8)

	if c.Stale() {
		t.Fatal("coordinator poisoned despite spare being available")
	}
	// The spare must have been claimed and hold worker 1's state.
	st, err := spareW.node.Stats()
	if err != nil || st.Rows == 0 {
		t.Fatalf("spare worker not serving shard state (stats %+v, err %v)", st, err)
	}

	// Cursor continuity: the net diff since the pre-failure cursor must
	// fold the pre-failure snapshot exactly onto the current merged set.
	d, err := c.Since(cursor)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reset {
		t.Fatal("pre-failure cursor resolved to a reset snapshot")
	}
	for _, v := range d.Removed {
		if _, ok := preSet[v.Key()]; !ok {
			t.Fatalf("since-diff removed a violation the cursor never saw: %+v", v)
		}
		delete(preSet, v.Key())
	}
	for _, v := range d.Added {
		preSet[v.Key()] = v
	}
	folded := make([]pfd.Violation, 0, len(preSet))
	for _, v := range preSet {
		folded = append(folded, v)
	}
	detect.SortViolations(folded)
	if got, want := mustJSON(t, folded), mustJSON(t, c.Violations()); got != want {
		t.Fatalf("cursor fold diverged after failover:\n got %s\nwant %s", got, want)
	}
}

// TestStoreSurvivesTornSiblingCopy tears the tail of one WAL copy and
// checks rehydration still reconstructs the full timeline from the
// intact sibling.
func TestStoreSurvivesTornSiblingCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := testTable(rng, 10)
	rules := testRules()
	dir := t.TempDir()
	st, err := CreateStore(dir, tbl, rules, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Drive a translator alongside the store, as the coordinator would.
	tr, err := shard.NewTranslator(tbl, rules, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq := int64(0)
	for i := 0; i < 6; i++ {
		batch := stream.Batch{stream.AppendRows(randRow(rng))}
		seq++
		if err := st.Append(context.Background(), seq, batch); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tr.Translate(batch); err != nil {
			t.Fatal(err)
		}
	}

	// Tear copy 0 halfway: recovery must fall back to copy 1's records.
	path := filepath.Join(dir, "cluster.shard0.wal")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	for s := 0; s < 2; s++ {
		boot, _, gotSeq, err := st.RehydrateBoot(s)
		if err != nil {
			t.Fatal(err)
		}
		if gotSeq != seq {
			t.Fatalf("shard %d rehydrated to seq %d, want %d", s, gotSeq, seq)
		}
		want := tr.Boot(s)
		if mustJSON(t, boot) != mustJSON(t, want) {
			t.Fatalf("shard %d rehydrated boot diverged:\n got %s\nwant %s", s, mustJSON(t, boot), mustJSON(t, want))
		}
	}
}

// TestBackoffDo covers the retry helper: eventual success, permanent
// short-circuit, budget exhaustion, and context cancellation mid-wait.
func TestBackoffDo(t *testing.T) {
	b := Backoff{Tries: 4, Base: time.Microsecond, Max: 10 * time.Microsecond}

	calls := 0
	err := b.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("eventual success: err %v after %d calls", err, calls)
	}

	calls = 0
	sentinel := errors.New("bad request")
	err = b.Do(context.Background(), func() error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("permanent: err %v after %d calls (want 1)", err, calls)
	}

	calls = 0
	underlying := errors.New("connection refused")
	err = b.Do(context.Background(), func() error {
		calls++
		return underlying
	})
	if err == nil || calls != 4 {
		t.Fatalf("exhaustion: err %v after %d calls (want 4)", err, calls)
	}
	// The giving-up report must surface the attempt count and the last
	// underlying cause, both in the message and through errors.As/Is.
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 4 {
		t.Fatalf("exhaustion error %v: want *RetryError with Attempts=4, got %+v", err, re)
	}
	if !errors.Is(err, underlying) {
		t.Fatalf("exhaustion error %v does not unwrap to the last cause", err)
	}
	if !strings.Contains(err.Error(), "4 attempt(s)") || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("exhaustion message %q hides the attempts or the cause", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slow := Backoff{Tries: 3, Base: time.Hour}
	calls = 0
	err = slow.Do(ctx, func() error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("cancellation: err %v after %d calls", err, calls)
	}
	// The cancellation path reports the same attempt/cause detail: the
	// operator sees what kept failing, not just "context canceled".
	if re = nil; !errors.As(err, &re) || re.Attempts != 1 || re.Last == nil {
		t.Fatalf("cancellation error %v: want *RetryError with Attempts=1 and Last set", err)
	}
	if !strings.Contains(err.Error(), "transient") {
		t.Fatalf("cancellation message %q hides the last underlying error", err)
	}
}

// TestEpochFencing pins the ownership-transfer contract: a worker booted
// under one coordinator epoch refuses batches and epoch-tagged reads
// from a superseded epoch, while header-less operator reads keep
// working.
func TestEpochFencing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tbl := testTable(rng, 8)
	rules := testRules()

	w := NewWorker(0, 1)
	w.SetLogf(t.Logf)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	optsA, optsB := fastClient(), fastClient()
	optsA.Epoch, optsB.Epoch = "epoch-a", "epoch-b"
	nodeA := NewRemoteNode(srv.URL, optsA)
	nodeB := NewRemoteNode(srv.URL, optsB)

	trA, err := shard.NewTranslator(tbl, rules, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nodeA.Init(trA.Boot(0), rules, 0); err != nil {
		t.Fatal(err)
	}
	batch := stream.Batch{stream.AppendRows(randRow(rng))}
	ops, _, err := trA.Translate(batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodeA.Apply(context.Background(), shard.NodeBatch{Seq: 1, Ops: ops[0]}); err != nil {
		t.Fatal(err)
	}

	// B boots the same worker: an ownership transfer that fences A out.
	trB, err := shard.NewTranslator(tbl.Clone(), rules, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Init(trB.Boot(0), rules, 1); err != nil {
		t.Fatal(err)
	}

	if _, err := nodeA.Apply(context.Background(), shard.NodeBatch{Seq: 2}); err == nil {
		t.Fatal("superseded epoch's apply succeeded")
	}
	if _, err := nodeA.Violations(); err == nil {
		t.Fatal("superseded epoch's read succeeded")
	}
	// The live epoch and header-less operator reads still work.
	if _, err := nodeB.Apply(context.Background(), shard.NodeBatch{Seq: 2}); err != nil {
		t.Fatalf("live epoch's apply failed: %v", err)
	}
	resp, err := http.Get(srv.URL + APIPrefix + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header-less operator read answered %s", resp.Status)
	}
}

// TestWorkerApplyFailurePoisons pins the half-applied-batch defense: an
// apply that fails mid-batch leaves partially mutated state, so the
// worker must refuse everything (412, permanent at the client) until a
// restore re-boots it — a blind retry of the 500 would re-apply the
// whole batch onto the partial state and could silently corrupt it.
func TestWorkerApplyFailurePoisons(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbl := testTable(rng, 8)
	rules := testRules()

	w := NewWorker(0, 1)
	w.SetLogf(t.Logf)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	node := NewRemoteNode(srv.URL, fastClient())

	tr, err := shard.NewTranslator(tbl, rules, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Init(tr.Boot(0), rules, 0); err != nil {
		t.Fatal(err)
	}

	// Op 0 applies cleanly, op 1 fails: state is now half-mutated.
	good := stream.AppendRows(randRow(rng))
	bad := stream.DeleteRows(999)
	nb := shard.NodeBatch{Seq: 1, Ops: []shard.NodeOp{
		{Op: &good, Globals: []int{tbl.NumRows()}},
		{Op: &bad},
	}}
	if _, err := node.Apply(context.Background(), nb); err == nil {
		t.Fatal("invalid batch accepted")
	}

	// Poisoned: even a clean batch (and the redelivery a retrying
	// coordinator would send) must fail permanently, not re-apply.
	if _, err := node.Apply(context.Background(), shard.NodeBatch{Seq: 2}); err == nil {
		t.Fatal("poisoned worker accepted a batch")
	}
	st, err := node.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready {
		t.Fatal("poisoned worker reports Ready")
	}
	// The probe must be diagnostic, not look like a fresh spare: the
	// poisoned flag and the slot it was serving survive the state drop.
	if !st.Poisoned {
		t.Fatal("healthz does not report Poisoned after a failed apply")
	}
	if st.Shard != 0 || st.Of != 1 {
		t.Fatalf("poisoned healthz reports slot %d/%d, want 0/1", st.Shard, st.Of)
	}

	// A restore (the coordinator's WAL failover path) revives it.
	if err := node.Restore(tr.Boot(0), rules, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Apply(context.Background(), shard.NodeBatch{Seq: 6}); err != nil {
		t.Fatalf("restored worker rejected a batch: %v", err)
	}
}

// TestWorkerSeqConflicts pins the worker's idempotency contract at the
// HTTP level: redelivery of the last batch replays the cached response,
// a gap is a 409 the client treats as permanent, and an uninitialized
// worker answers 412.
func TestWorkerSeqConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := testTable(rng, 8)
	rules := testRules()

	w := NewWorker(0, 1)
	w.SetLogf(t.Logf)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	node := NewRemoteNode(srv.URL, fastClient())

	if _, err := node.Apply(context.Background(), shard.NodeBatch{Seq: 1}); err == nil {
		t.Fatal("apply before init succeeded")
	}

	tr, err := shard.NewTranslator(tbl, rules, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Init(tr.Boot(0), rules, 0); err != nil {
		t.Fatal(err)
	}

	batch := stream.Batch{stream.AppendRows(randRow(rng))}
	ops, _, err := tr.Translate(batch)
	if err != nil {
		t.Fatal(err)
	}
	nb := shard.NodeBatch{Seq: 1, Ops: ops[0], Diffs: true}
	first, err := node.Apply(context.Background(), nb)
	if err != nil {
		t.Fatal(err)
	}
	redelivered, err := node.Apply(context.Background(), nb)
	if err != nil {
		t.Fatalf("redelivery rejected: %v", err)
	}
	if mustJSON(t, first) != mustJSON(t, redelivered) {
		t.Fatal("redelivery returned different diffs than the original application")
	}
	vios, err := node.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, vios), mustJSON(t, fullDetect(t, tbl, rules)); got != want {
		t.Fatalf("worker state diverged after redelivery:\n got %s\nwant %s", got, want)
	}

	// Stale (already-surpassed) sequence numbers are conflicts…
	if _, err := node.Apply(context.Background(), shard.NodeBatch{Seq: 0}); err == nil {
		t.Fatal("stale sequence accepted")
	}
	// …but skipping ahead is legal: the coordinator only sends batches
	// that touch this shard, so the worker's sequence is sparse.
	if _, err := node.Apply(context.Background(), shard.NodeBatch{Seq: 5}); err != nil {
		t.Fatalf("sparse sequence rejected: %v", err)
	}
}
