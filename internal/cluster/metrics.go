// Cluster-layer instrumentation: retry/backoff accounting on the
// coordinator's client side, epoch fences and per-shard apply counters
// on the worker side, and replicated-WAL byte accounting in the
// failover store. Worker counters are labeled by the shard the worker
// currently serves, so several workers sharing one process (unit
// tests) stay distinguishable.
package cluster

import "github.com/anmat/anmat/internal/obs"

var (
	retrySleeps = obs.Default.NewCounter("anmat_cluster_retries_total",
		"Retry sleeps taken by remote worker calls (attempts beyond the first).")
	retryExhausted = obs.Default.NewCounter("anmat_cluster_retries_exhausted_total",
		"Remote worker calls that exhausted their retry budget (failover trigger).")
	clusterWALBytes = obs.Default.NewCounter("anmat_cluster_wal_bytes_total",
		"Bytes appended to the coordinator's K-way replicated failover WAL (all copies).")
	clusterWALAppendDur = obs.Default.NewHistogram("anmat_cluster_wal_append_duration_seconds",
		"Latency of journaling one batch to all K failover-WAL copies (includes fsync when enabled).",
		obs.DurationBuckets)
	epochFences = obs.Default.NewCounter("anmat_worker_epoch_fences_total",
		"Worker requests rejected by epoch fencing (a superseded coordinator knocking).")
	workerApplied = obs.Default.NewCounterVec("anmat_worker_batches_applied_total",
		"Batches a worker's engine actually applied, by shard (cache replays excluded).", "shard")
	workerApplyDur = obs.Default.NewHistogramVec("anmat_worker_apply_duration_seconds",
		"Worker-side engine apply latency, by shard.", obs.DurationBuckets, "shard")
	workerRedeliveries = obs.Default.NewCounterVec("anmat_worker_redeliveries_total",
		"Redelivered batches answered from the worker's idempotency cache, by shard.", "shard")
	workerPoisoned = obs.Default.NewGaugeVec("anmat_worker_poisoned",
		"1 while a worker's shard state is poisoned pending /restore, by shard.", "shard")
	workerBoots = obs.Default.NewCounterVec("anmat_worker_boots_total",
		"Worker state boots, by path (init or restore).", "path")
)
