// RemoteNode: the shard.Node implementation that speaks /shard/v1 to a
// worker. Every call is request-scoped (context with timeout) and wrapped
// in the bounded-retry policy; retrying an apply is safe because the
// worker deduplicates by sequence number, and a sequence-conflict (409)
// or validation (4xx) response is marked permanent so the retry budget is
// reserved for actual transport failure.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/anmat/anmat/internal/obs"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/stream"
)

// ClientOptions tunes a RemoteNode's transport behavior. The zero value
// takes the defaults noted per field.
type ClientOptions struct {
	// Timeout bounds each HTTP request (default 5s). A worker that cannot
	// answer within it counts as a failed attempt.
	Timeout time.Duration
	// Retry is the per-call retry policy (default DefaultBackoff).
	Retry Backoff
	// HTTPClient overrides the transport (tests inject flaky ones); nil
	// uses a private http.Client.
	HTTPClient *http.Client
	// Epoch identifies the coordinator this node speaks for: it is sent
	// in the boot body and in the EpochHeader of every request, and a
	// worker booted under it refuses batches from any other epoch — the
	// fence that keeps a stale coordinator from silently mutating state a
	// newer one owns. cluster.New fills it with a fresh unique value when
	// empty; set it only to pin a deterministic epoch in tests.
	Epoch string
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retry.Tries == 0 {
		o.Retry = DefaultBackoff()
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

// RemoteNode drives one worker over HTTP. It implements shard.Node, so a
// coordinator cannot tell it from an in-process LocalNode — that symmetry
// is what the cross-process equivalence tests pin down.
type RemoteNode struct {
	base string // e.g. http://127.0.0.1:7001
	opts ClientOptions
}

// NewRemoteNode returns a client for the worker at base URL. It performs
// no I/O; pair with Init (or Healthz) to reach the worker.
func NewRemoteNode(base string, opts ClientOptions) *RemoteNode {
	return &RemoteNode{base: base, opts: opts.withDefaults()}
}

// Base returns the worker's base URL.
func (n *RemoteNode) Base() string { return n.base }

// call performs one retried request-scoped round trip: POST body (or GET
// when body is nil) to path, decoding a 200 into out. Non-2xx responses
// surface the worker's error envelope; 4xx ones are permanent. The
// caller's context rides along for tracing: each attempt gets its own
// "cluster.rpc" span, and the span's traceparent (plus the context's
// request ID) is injected into the outbound headers so the worker-side
// trace segment links back to this coordinator span.
func (n *RemoteNode) call(callCtx context.Context, method, path string, body, out any) error {
	var encoded []byte
	if body != nil {
		var err error
		if encoded, err = json.Marshal(body); err != nil {
			return fmt.Errorf("cluster %s%s: encode: %w", n.base, path, err)
		}
	}
	attempt := 0
	return n.opts.Retry.Do(callCtx, func() (err error) {
		attempt++
		spanCtx, endSpan := obs.StartSpan(callCtx, "cluster.rpc")
		obs.SetSpanAttrs(spanCtx, "path", path, "attempt", strconv.Itoa(attempt))
		defer func() { endSpan(err) }()
		ctx, cancel := context.WithTimeout(spanCtx, n.opts.Timeout)
		defer cancel()
		var rdr io.Reader
		if encoded != nil {
			rdr = bytes.NewReader(encoded)
		}
		req, err := http.NewRequestWithContext(ctx, method, n.base+path, rdr)
		if err != nil {
			return Permanent(fmt.Errorf("cluster %s%s: %w", n.base, path, err))
		}
		if encoded != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if n.opts.Epoch != "" {
			req.Header.Set(EpochHeader, n.opts.Epoch)
		}
		if tp := obs.TraceparentFrom(spanCtx); tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		if rid := obs.RequestIDFrom(spanCtx); rid != "" {
			req.Header.Set(obs.RequestIDHeader, rid)
		}
		resp, err := n.opts.HTTPClient.Do(req)
		if err != nil {
			return fmt.Errorf("cluster %s%s: %w", n.base, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var envelope errorResponse
			msg := resp.Status
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&envelope) == nil && envelope.Error != "" {
				msg = envelope.Error
			}
			err := fmt.Errorf("cluster %s%s: %s", n.base, path, msg)
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				// The worker answered: the request itself is unacceptable
				// (validation, sequence conflict, uninitialized). Retrying the
				// same bytes cannot help.
				return Permanent(err)
			}
			return err
		}
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("cluster %s%s: decode: %w", n.base, path, err)
		}
		return nil
	})
}

// Init pushes boot state to the worker over /init.
func (n *RemoteNode) Init(boot shard.NodeBoot, rules []*pfd.PFD, seq int64) error {
	var st StateResponse
	return n.call(context.Background(), http.MethodPost, APIPrefix+"/init", BootRequest{Boot: boot, Rules: rules, Seq: seq, Epoch: n.opts.Epoch}, &st)
}

// Restore pushes replacement state over /restore (failover semantics).
func (n *RemoteNode) Restore(boot shard.NodeBoot, rules []*pfd.PFD, seq int64) error {
	var st StateResponse
	return n.call(context.Background(), http.MethodPost, APIPrefix+"/restore", BootRequest{Boot: boot, Rules: rules, Seq: seq, Epoch: n.opts.Epoch}, &st)
}

// Healthz probes the worker.
func (n *RemoteNode) Healthz() (StateResponse, error) {
	var st StateResponse
	err := n.call(context.Background(), http.MethodGet, "/healthz", nil, &st)
	return st, err
}

// Apply sends one translated batch; redelivered batches come back from
// the worker's idempotency cache, so the retry wrapper is safe. The
// context carries the coordinator's fan-out span: the RPC span nests
// under it and its traceparent travels to the worker.
func (n *RemoteNode) Apply(ctx context.Context, nb shard.NodeBatch) ([]*stream.Diff, error) {
	var resp ApplyResponse
	if err := n.call(ctx, http.MethodPost, APIPrefix+"/apply", nb, &resp); err != nil {
		return nil, err
	}
	return resp.Diffs, nil
}

// Violations fetches the worker's maintained set, already globalized.
func (n *RemoteNode) Violations() ([]pfd.Violation, error) {
	var resp ViolationsResponse
	if err := n.call(context.Background(), http.MethodGet, APIPrefix+"/violations", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Violations, nil
}

// Trace fetches the worker-side span records of one trace — the segment
// the worker retained when a coordinator RPC carried that traceparent.
func (n *RemoteNode) Trace(id string) (obs.Trace, error) {
	var tr obs.Trace
	err := n.call(context.Background(), http.MethodGet, APIPrefix+"/trace/"+id, nil, &tr)
	return tr, err
}

// Stats fetches the worker's state summary.
func (n *RemoteNode) Stats() (shard.NodeStats, error) {
	var st shard.NodeStats
	err := n.call(context.Background(), http.MethodGet, APIPrefix+"/stats", nil, &st)
	return st, err
}

// Close releases idle connections; the worker process itself is not ours
// to stop.
func (n *RemoteNode) Close() error {
	n.opts.HTTPClient.CloseIdleConnections()
	return nil
}
