// The coordinator's failover store: a snapshot of the global table at
// coordinator construction plus a K-way replicated write-ahead log of
// every batch since. Each batch is journaled — before any worker sees
// it — to K per-shard WAL files (wal.Record encoding, shared with the
// session durability layer), so losing a worker, or a torn tail in one
// WAL copy, never loses the batch: recovery merges the copies by
// sequence number and takes any intact record.
//
// Rehydrating a shard is a replay, not a re-route: a row's home shard is
// its global index mod K *at insertion time*, so current cell values
// alone cannot reconstruct placement. RehydrateBoot decodes the
// snapshot, rebuilds a shard.Translator over it, feeds it the merged WAL
// batches (discarding the translated operations — only the bookkeeping
// matters), and renders the dead shard's boot state from the result.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"github.com/anmat/anmat/internal/obs"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/stream"
	"github.com/anmat/anmat/internal/table"
	"github.com/anmat/anmat/internal/wal"
)

// storeSnapshot is the serialized baseline the WAL replays over.
type storeSnapshot struct {
	Seq int64 `json:"seq"`
	K   int   `json:"k"`
	// Table is the binary table snapshot (table.EncodeBinaryBytes),
	// base64 via encoding/json.
	Table []byte     `json:"table"`
	Rules []*pfd.PFD `json:"rules"`
}

// Store is the coordinator's snapshot + K-way WAL directory.
type Store struct {
	dir   string
	k     int
	fsync bool
	files []*os.File // open WAL appenders, one per shard copy
}

const snapName = "cluster.snap"

func walName(s int) string { return fmt.Sprintf("cluster.shard%d.wal", s) }

// CreateStore initializes dir as a fresh failover store: snapshots the
// table, rules, and base sequence, and truncates the K WAL copies. Any
// previous store in dir is replaced.
func CreateStore(dir string, t *table.Table, rules []*pfd.PFD, k int, seq int64, fsync bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster store: %w", err)
	}
	data, err := t.EncodeBinaryBytes()
	if err != nil {
		return nil, fmt.Errorf("cluster store: snapshot table: %w", err)
	}
	blob, err := json.Marshal(storeSnapshot{Seq: seq, K: k, Table: data, Rules: rules})
	if err != nil {
		return nil, fmt.Errorf("cluster store: encode snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapName+".tmp")
	if err := writeFileSync(tmp, blob, fsync); err != nil {
		return nil, fmt.Errorf("cluster store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return nil, fmt.Errorf("cluster store: %w", err)
	}
	if fsync {
		// Make the rename itself durable: with only the WAL appends synced,
		// a power loss could leave durable WAL records beside a missing
		// snapshot, and RehydrateBoot would have nothing to replay over.
		if err := syncDir(dir); err != nil {
			return nil, fmt.Errorf("cluster store: %w", err)
		}
	}
	st := &Store{dir: dir, k: k, fsync: fsync}
	for s := 0; s < k; s++ {
		f, err := os.OpenFile(filepath.Join(dir, walName(s)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			_ = st.Close()
			return nil, fmt.Errorf("cluster store: %w", err)
		}
		st.files = append(st.files, f)
	}
	if fsync {
		// The WAL files' directory entries must survive power loss too, or
		// fsynced appends land in files no recovery can find.
		if err := syncDir(dir); err != nil {
			_ = st.Close()
			return nil, fmt.Errorf("cluster store: %w", err)
		}
	}
	return st, nil
}

// writeFileSync writes data to path, fsyncing before close when sync is
// set (an os.WriteFile whose contents are durable before the caller's
// rename publishes them).
func writeFileSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	return f.Close()
}

// syncDir fsyncs a directory, making its entries (renames, creations)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// Append journals one batch to every WAL copy, write-ahead of any worker
// seeing it. An error from any copy fails the append — the coordinator
// must not apply a batch it cannot replay. The record is encoded once
// and replicated K times.
func (st *Store) Append(ctx context.Context, seq int64, batch stream.Batch) error {
	ctx, endSpan := obs.StartSpan(ctx, "cluster.wal.append")
	t0 := time.Now()
	b, err := wal.Encode(wal.Record{Seq: seq, Batch: batch})
	if err != nil {
		err = fmt.Errorf("cluster store: %w", err)
		endSpan(err)
		return err
	}
	obs.SetSpanAttrs(ctx,
		"seq", strconv.FormatInt(seq, 10),
		"wal_bytes", strconv.Itoa(len(b)*len(st.files)),
		"copies", strconv.Itoa(len(st.files)))
	for s, f := range st.files {
		if err := wal.AppendEncoded(f, seq, b, st.fsync); err != nil {
			err = fmt.Errorf("cluster store copy %d: %w", s, err)
			endSpan(err)
			return err
		}
	}
	endSpan(nil)
	clusterWALBytes.Add(float64(len(b) * len(st.files)))
	clusterWALAppendDur.Observe(time.Since(t0).Seconds())
	return nil
}

// Close releases the WAL file handles.
func (st *Store) Close() error {
	var first error
	for _, f := range st.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.files = nil
	return first
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// load reads the snapshot and the merged WAL timeline: per sequence
// number, the first intact copy across the K files wins, so one torn or
// lost copy is survivable as long as a sibling has the record. The
// returned batches are contiguous from snapshot seq+1; a gap present in
// every copy truncates the timeline there (batches after an unrecoverable
// hole could not have been acknowledged against a recovered state).
func (st *Store) load() (storeSnapshot, []wal.Record, error) {
	blob, err := os.ReadFile(filepath.Join(st.dir, snapName))
	if err != nil {
		return storeSnapshot{}, nil, fmt.Errorf("cluster store: %w", err)
	}
	var snap storeSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return storeSnapshot{}, nil, fmt.Errorf("cluster store: decode snapshot: %w", err)
	}
	bySeq := make(map[int64]wal.Record)
	for s := 0; s < snap.K; s++ {
		recs, _, _, err := wal.Read(filepath.Join(st.dir, walName(s)))
		if err != nil {
			// A copy that cannot be read at all (I/O error) is treated like a
			// fully torn one: siblings carry the records.
			continue
		}
		for _, rec := range recs {
			if _, ok := bySeq[rec.Seq]; !ok {
				bySeq[rec.Seq] = rec
			}
		}
	}
	seqs := make([]int64, 0, len(bySeq))
	for seq := range bySeq {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var out []wal.Record
	next := snap.Seq + 1
	for _, seq := range seqs {
		if seq < next {
			continue // pre-snapshot remnant
		}
		if seq != next {
			break // unrecoverable gap: stop at the clean prefix
		}
		out = append(out, bySeq[seq])
		next++
	}
	return snap, out, nil
}

// RehydrateBoot reconstructs shard s's current boot state by replaying
// the snapshot plus the merged WAL through a fresh placement translator.
// It also returns the rule set and the sequence number the state
// corresponds to.
func (st *Store) RehydrateBoot(s int) (shard.NodeBoot, []*pfd.PFD, int64, error) {
	snap, recs, err := st.load()
	if err != nil {
		return shard.NodeBoot{}, nil, 0, err
	}
	if s < 0 || s >= snap.K {
		return shard.NodeBoot{}, nil, 0, fmt.Errorf("cluster store: shard %d of %d", s, snap.K)
	}
	t, err := table.DecodeBinaryBytes(snap.Table)
	if err != nil {
		return shard.NodeBoot{}, nil, 0, fmt.Errorf("cluster store: decode table: %w", err)
	}
	tr, err := shard.NewTranslator(t, snap.Rules, snap.K)
	if err != nil {
		return shard.NodeBoot{}, nil, 0, fmt.Errorf("cluster store: %w", err)
	}
	seq := snap.Seq
	for _, rec := range recs {
		// Only the placement bookkeeping matters; the translated per-shard
		// operations are discarded.
		if _, _, err := tr.Translate(rec.Batch); err != nil {
			return shard.NodeBoot{}, nil, 0, fmt.Errorf("cluster store: replay batch %d: %w", rec.Seq, err)
		}
		seq = rec.Seq
	}
	return tr.Boot(s), snap.Rules, seq, nil
}
