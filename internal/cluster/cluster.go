// Package cluster scales sharded detection past one process: the same
// coordinator/translator machinery as internal/shard, but with each
// shard's engine living in a worker process reached over the /shard/v1
// HTTP API, and with a snapshot + K-way replicated write-ahead log
// backing failover. The cluster Coordinator implements the same
// incremental-detection surface as stream.Engine and shard.Coordinator
// (core.Streamer), and its merged violation sets stay byte-identical to
// single-engine detection at any worker count — the multi-process
// equivalence tests pin that down over golden corpora and randomized
// delta scripts, including a worker killed mid-script.
//
// Failover path: every batch is journaled to the K-way WAL before any
// worker sees it. When a worker stops answering (request timeouts, then
// the bounded retry budget, exhausted), the coordinator rehydrates the
// dead shard's state — snapshot + merged WAL replayed through a fresh
// placement translator, taking any intact record when a copy is torn —
// and pushes it to a spare worker over /restore. The coordinator's own
// diff log is untouched by the swap, so violations?since= cursors issued
// before the failure keep resolving exactly.
//
// A worker holds exactly one shard state, so a worker set belongs to
// exactly one coordinator at a time: booting a second coordinator over
// the same workers replaces their state, and the first coordinator is
// fenced out by epoch (its applies fail with 409 instead of silently
// corrupting the new owner's shards — see the proto.go epoch-fencing
// section). Callers that multiplex sessions over one process must give
// each live coordinator a disjoint worker set; internal/core enforces
// this with a system-level claim registry.
package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"sync"

	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/table"
)

// Options tunes New. The zero value journals to a temporary directory,
// uses default client timeouts/retry, and has no spare workers (a dead
// worker then poisons the coordinator, exactly like the in-process
// sharded engine after an unrecoverable failure).
type Options struct {
	// BaseSeq is the starting sequence number (cursor continuity; see
	// stream.NewEngineFrom).
	BaseSeq int64
	// Dir is the failover store directory. "" creates a fresh temporary
	// directory (removed on Close).
	Dir string
	// Fsync makes the store durable against power loss — every WAL append
	// is fsynced, and the snapshot file and the store directory's entries
	// are synced at creation — matching the session store's -fsync
	// semantics.
	Fsync bool
	// Spares are standby worker base URLs used for failover, consumed in
	// order. A dead primary with no spare left (and no Respawn) poisons
	// the coordinator.
	Spares []string
	// Respawn, when set, is asked for a fresh worker base URL once the
	// spare list is exhausted — the hook for harnesses that can start
	// processes (the e2e tests respawn killed workers with it). Return ""
	// to decline.
	Respawn func(s int) string
	// Client tunes every worker call's timeout and retry policy.
	Client ClientOptions
}

// Coordinator is the distributed sharded engine: shard.Coordinator
// routing and merging, RemoteNode transport, WAL-backed failover. It
// embeds the sharded coordinator, so it satisfies core.Streamer the same
// way.
type Coordinator struct {
	*shard.Coordinator
	store  *Store
	ownDir bool // Dir was auto-created; Close removes it

	mu     sync.Mutex
	spares []string
	opts   Options
	rules  []*pfd.PFD
}

// New builds a coordinator over the table's current contents with one
// worker per shard: len(workers) fixes K. Each worker is initialized
// over /init with its boot state (concurrently — this is the bootstrap
// detection pass, split K ways across processes), and every subsequent
// batch is WAL-journaled before fan-out.
func New(t *table.Table, rules []*pfd.PFD, workers []string, opts Options) (*Coordinator, error) {
	k := len(workers)
	if k < 1 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	if opts.Client.Epoch == "" {
		// A fresh epoch per coordinator: workers fence requests against it,
		// so a superseded coordinator (another session booting the same
		// workers, or this session rebuilding its engine) errors out instead
		// of silently mutating state it no longer owns.
		opts.Client.Epoch = newEpoch()
	}
	dir, ownDir := opts.Dir, false
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "anmat-cluster-*"); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		ownDir = true
	}
	store, err := CreateStore(dir, t, rules, k, opts.BaseSeq, opts.Fsync)
	if err != nil {
		if ownDir {
			_ = os.RemoveAll(dir)
		}
		return nil, err
	}
	c := &Coordinator{
		store:  store,
		ownDir: ownDir,
		spares: append([]string(nil), opts.Spares...),
		opts:   opts,
		rules:  rules,
	}
	sc, err := shard.NewWith(t, rules, k, shard.Config{
		BaseSeq: opts.BaseSeq,
		Journal: store.Append,
		NewNode: func(s int, boot shard.NodeBoot, rules []*pfd.PFD) (shard.Node, error) {
			node := NewRemoteNode(workers[s], opts.Client)
			if err := node.Init(boot, rules, opts.BaseSeq); err != nil {
				return nil, err
			}
			return node, nil
		},
		Recover: c.recoverShard,
	})
	if err != nil {
		_ = store.Close()
		if ownDir {
			_ = os.RemoveAll(dir)
		}
		return nil, err
	}
	c.Coordinator = sc
	return c, nil
}

// recoverShard is the failover hook the sharded coordinator invokes once
// a worker's retry budget is exhausted: rehydrate the shard's state from
// snapshot + merged WAL, claim a replacement endpoint, and push the state
// over /restore. The boot the coordinator hands us (its live translator's
// view) and the WAL replay must agree; the store is the durable source of
// truth, so it is what the replacement receives.
func (c *Coordinator) recoverShard(s int, boot shard.NodeBoot, seq int64) (shard.Node, error) {
	rboot, rules, rseq, err := c.store.RehydrateBoot(s)
	if err != nil {
		return nil, fmt.Errorf("rehydrate: %w", err)
	}
	if rseq != seq {
		return nil, fmt.Errorf("rehydrate: WAL replays to seq %d, coordinator at %d", rseq, seq)
	}
	endpoint, err := c.claimSpare(s)
	if err != nil {
		return nil, err
	}
	node := NewRemoteNode(endpoint, c.opts.Client)
	if err := node.Restore(rboot, rules, rseq); err != nil {
		return nil, fmt.Errorf("restore to %s: %w", endpoint, err)
	}
	return node, nil
}

// claimSpare pops the next standby endpoint, falling back to the Respawn
// hook when the list is empty.
func (c *Coordinator) claimSpare(s int) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spares) > 0 {
		endpoint := c.spares[0]
		c.spares = c.spares[1:]
		return endpoint, nil
	}
	if c.opts.Respawn != nil {
		if endpoint := c.opts.Respawn(s); endpoint != "" {
			return endpoint, nil
		}
	}
	return "", fmt.Errorf("no spare worker for shard %d", s)
}

// newEpoch returns a fresh coordinator epoch: 8 random bytes, hex.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand practically cannot fail; a fixed marker still fences
		// better than the empty epoch (which disables the check).
		return "epoch-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Epoch returns the coordinator's fencing epoch (every worker it boots
// is claimed under it).
func (c *Coordinator) Epoch() string { return c.opts.Client.Epoch }

// Store exposes the failover store (tests inspect the WAL copies).
func (c *Coordinator) Store() *Store { return c.store }

// Close releases the remote nodes and the failover store (removing its
// directory when it was auto-created).
func (c *Coordinator) Close() error {
	err := c.Coordinator.Close()
	if serr := c.store.Close(); err == nil {
		err = serr
	}
	if c.ownDir {
		if rerr := os.RemoveAll(c.store.Dir()); err == nil {
			err = rerr
		}
	}
	return err
}
