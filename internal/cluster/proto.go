// The shard wire protocol, version 1: plain HTTP/JSON under /shard/v1/.
// A worker is one shard.Node behind a listener — the request and response
// bodies are the Node interface's types (shard.NodeBatch in, diffs and
// globalized violations out) plus a boot envelope carrying the rules, so
// the coordinator's routing, merge, and failover logic stays identical
// whether a shard runs in-process or across the network.
//
//	POST /shard/v1/init        BootRequest        → StateResponse
//	POST /shard/v1/restore     BootRequest        → StateResponse   (alias: replace state)
//	POST /shard/v1/apply       shard.NodeBatch    → ApplyResponse   (idempotent by seq)
//	GET  /shard/v1/violations[?since=S]           → ViolationsResponse
//	GET  /shard/v1/stats                          → shard.NodeStats
//	GET  /shard/v1/snapshot                       → BootRequest     (current state, re-bootable)
//	GET  /healthz                                 → StateResponse
//
// Errors are {"error": "..."} with a 4xx/5xx status; 409 marks sequence
// and epoch conflicts (gap, stale replay, fenced-out coordinator) and
// 412 marks calls against an uninitialized (or poisoned) worker.
//
// # Epoch fencing
//
// A worker holds exactly one shard state, so it belongs to exactly one
// coordinator at a time. Each boot carries the coordinator's epoch (a
// unique string; see Options.Client.Epoch) and the worker records it;
// every later request from a RemoteNode repeats the epoch in the
// X-Anmat-Epoch header. A boot for a new epoch is an ownership transfer
// — it replaces the state — after which the previous coordinator's
// applies fail with 409 instead of silently mutating the new owner's
// state. Applies require a matching header once an epoch is set; reads
// reject only a *mismatched* header, so header-less operator requests
// (curl against /stats, /snapshot) still work.
package cluster

import (
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/shard"
	"github.com/anmat/anmat/internal/stream"
)

// APIPrefix is the versioned path prefix of the shard worker API.
const APIPrefix = "/shard/v1"

// EpochHeader carries the requesting coordinator's epoch on every
// RemoteNode call; see the epoch-fencing section of the package comment.
const EpochHeader = "X-Anmat-Epoch"

// BootRequest initializes (or replaces, via /restore) a worker's shard
// state: the boot sub-table and mapping, the rule set, the sequence
// number the state corresponds to, and the booting coordinator's epoch
// (the worker fences later requests against it).
type BootRequest struct {
	Boot  shard.NodeBoot `json:"boot"`
	Rules []*pfd.PFD     `json:"rules"`
	Seq   int64          `json:"seq"`
	Epoch string         `json:"epoch,omitempty"`
}

// StateResponse describes a worker's current state (init/restore reply
// and health probe body). Epoch and Poisoned make the probe diagnostic:
// a worker that discarded its state after a failed apply reports the
// slot it was serving and Poisoned=true instead of looking like a
// fresh spare.
type StateResponse struct {
	OK       bool   `json:"ok"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	Ready    bool   `json:"ready"` // false until the first init lands
	Seq      int64  `json:"seq"`
	Rows     int    `json:"rows"`
	Epoch    string `json:"epoch,omitempty"`
	Poisoned bool   `json:"poisoned,omitempty"`
}

// ApplyResponse returns one applied batch's globalized per-op diffs
// (empty unless the batch requested them).
type ApplyResponse struct {
	Seq   int64          `json:"seq"`
	Diffs []*stream.Diff `json:"diffs,omitempty"`
}

// ViolationsResponse returns the worker's maintained violation set,
// globalized, at the given sequence number. When the request carried
// ?since= the Diff field holds the cursor-resolved change instead (a
// reset snapshot unless the cursor is current — workers retain no diff
// history; the coordinator owns the merged cursor log).
type ViolationsResponse struct {
	Seq        int64           `json:"seq"`
	Violations []pfd.Violation `json:"violations,omitempty"`
	Diff       *stream.Diff    `json:"diff,omitempty"`
}

// errorResponse is the uniform error envelope.
type errorResponse struct {
	Error string `json:"error"`
}
