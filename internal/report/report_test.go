package report

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/anmat/anmat/internal/core"
	"github.com/anmat/anmat/internal/datagen"
	"github.com/anmat/anmat/internal/docstore"
)

func runSession(t *testing.T) *core.Session {
	t.Helper()
	sys := core.NewSystem(docstore.NewMem())
	d := datagen.ZipCity(1000, 0.01, 77)
	se := sys.NewSession("rpt", d.Table, core.DefaultParams())
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return se
}

func TestWriteSections(t *testing.T) {
	se := runSession(t)
	var buf bytes.Buffer
	if err := Write(&buf, se, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# ANMAT report",
		"## 1. Profile",
		"## 2. Discovered PFDs",
		"## 3. Violations",
		"## 4. Suggested repairs",
		"coverage γ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Tableaux and violations actually present.
	if !strings.Contains(out, "→") && !strings.Contains(out, "| `") {
		t.Error("no tableau rows rendered")
	}
	// Error triage appears when repairs exist.
	if !strings.Contains(out, "Error triage:") {
		t.Error("triage summary missing")
	}
	if !strings.Contains(out, "| kind |") {
		t.Error("kind column missing in repairs table")
	}
}

func TestWriteTruncation(t *testing.T) {
	se := runSession(t)
	var buf bytes.Buffer
	if err := Write(&buf, se, Options{MaxViolations: 1, MaxRowsPerTableau: 1, MaxRepairs: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "…") {
		t.Error("expected truncation markers")
	}
	// Far smaller than the full report.
	var full bytes.Buffer
	if err := Write(&full, se, Options{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= full.Len() {
		t.Errorf("truncated report (%d) not smaller than full (%d)", buf.Len(), full.Len())
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestWritePropagatesErrors(t *testing.T) {
	se := runSession(t)
	if err := Write(&failWriter{after: 2}, se, Options{}); err == nil {
		t.Error("write error should propagate")
	}
}

func TestWriteEmptySession(t *testing.T) {
	sys := core.NewSystem(docstore.NewMem())
	d := datagen.ZipCity(50, 0, 78)
	se := sys.NewSession("rpt", d.Table, core.Params{MinCoverage: 1.1, AllowedViolations: 0})
	if err := se.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, se, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No PFDs met the thresholds") {
		t.Error("empty discovery should be stated")
	}
}
