// Package report renders a full pipeline run as a Markdown document — the
// stand-in for the demo's Jupyter-notebook interface: the same profiling,
// discovery, detection and repair content a notebook session would show,
// as a shareable artifact.
package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/anmat/anmat/internal/classify"
	"github.com/anmat/anmat/internal/core"
	"github.com/anmat/anmat/internal/profile"
)

// Options trims the report.
type Options struct {
	// MaxPatternsPerColumn caps the Figure 3 listing (default 5).
	MaxPatternsPerColumn int
	// MaxRowsPerTableau caps tableau rows shown per PFD (default 15).
	MaxRowsPerTableau int
	// MaxViolations caps the violation listing (default 50).
	MaxViolations int
	// MaxRepairs caps the repair listing (default 50).
	MaxRepairs int
}

func (o *Options) defaults() {
	if o.MaxPatternsPerColumn <= 0 {
		o.MaxPatternsPerColumn = 5
	}
	if o.MaxRowsPerTableau <= 0 {
		o.MaxRowsPerTableau = 15
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 50
	}
	if o.MaxRepairs <= 0 {
		o.MaxRepairs = 50
	}
}

// Write renders the session to w. The session should have been Run (or
// have had the individual stages executed).
func Write(w io.Writer, se *core.Session, opts Options) error {
	opts.defaults()
	bw := &errWriter{w: w}

	bw.printf("# ANMAT report — %s\n\n", se.Table.Name())
	bw.printf("Project: **%s** · %d rows · %d columns\n\n",
		se.Project, se.Table.NumRows(), se.Table.NumCols())
	bw.printf("Parameters: minimum coverage γ = %.3f, allowed violations ρ = %.3f\n\n",
		se.Params.MinCoverage, se.Params.AllowedViolations)

	bw.printf("## 1. Profile (patterns in the data)\n\n")
	bw.printf("| column | type | distinct | top patterns (pattern::position, frequency) |\n")
	bw.printf("|---|---|---|---|\n")
	for i, cp := range se.Profile.Columns {
		pats := profile.ColumnPatterns(se.Table.ColumnByIndex(i))
		var cell []string
		for j, ps := range pats {
			if j >= opts.MaxPatternsPerColumn {
				cell = append(cell, "…")
				break
			}
			cell = append(cell, fmt.Sprintf("`%s`::%d, %d", ps.Pattern, ps.Position, ps.Frequency))
		}
		bw.printf("| %s | %s | %d | %s |\n", cp.Name, cp.Type, cp.Distinct, strings.Join(cell, "<br>"))
	}
	bw.printf("\n")

	bw.printf("## 2. Discovered PFDs\n\n")
	if len(se.Discovered) == 0 {
		bw.printf("No PFDs met the thresholds.\n\n")
	}
	for _, p := range se.Discovered {
		bw.printf("### %s → %s (coverage %.1f%%)\n\n", p.LHS, p.RHS, p.Coverage*100)
		bw.printf("| pattern | RHS | support |\n|---|---|---|\n")
		for i, row := range p.Tableau.Rows() {
			if i >= opts.MaxRowsPerTableau {
				bw.printf("| … | | |\n")
				break
			}
			bw.printf("| `%s` | %s | %d |\n", row.LHS.String(), row.RHS, row.Support)
		}
		bw.printf("\n")
	}

	bw.printf("## 3. Violations (%d)\n\n", len(se.Violations))
	if len(se.Violations) > 0 {
		bw.printf("| rule | cells | observed | expected |\n|---|---|---|---|\n")
		for i, v := range se.Violations {
			if i >= opts.MaxViolations {
				bw.printf("| … %d more | | | |\n", len(se.Violations)-opts.MaxViolations)
				break
			}
			cells := make([]string, len(v.Cells))
			for j, c := range v.Cells {
				cells[j] = c.String()
			}
			bw.printf("| `%s` | %s | %s | %s |\n",
				v.Row, strings.Join(cells, " "), v.Observed, v.Expected)
		}
		bw.printf("\n")
	}

	bw.printf("## 4. Suggested repairs (%d)\n\n", len(se.Repairs))
	if len(se.Repairs) > 0 {
		// Error triage: classify each repair's observed→suggested pair so
		// a reviewer can batch-validate by kind (typos and case slips are
		// near-certain; swaps deserve a look).
		pairs := make([][2]string, len(se.Repairs))
		for i, r := range se.Repairs {
			pairs[i] = [2]string{r.Current, r.Suggested}
		}
		sum := classify.Summarize(pairs)
		bw.printf("Error triage: ")
		first := true
		for _, k := range []classify.Kind{classify.Typo, classify.Truncation, classify.CaseSlip, classify.Swap} {
			if n := sum.Counts[k]; n > 0 {
				if !first {
					bw.printf(", ")
				}
				bw.printf("%d %s", n, k)
				first = false
			}
		}
		bw.printf("\n\n")

		bw.printf("| cell | current | suggested | kind | confidence | rule |\n|---|---|---|---|---|---|\n")
		for i, r := range se.Repairs {
			if i >= opts.MaxRepairs {
				bw.printf("| … %d more | | | | | |\n", len(se.Repairs)-opts.MaxRepairs)
				break
			}
			bw.printf("| %s | %s | %s | %s | %.2f | `%s` |\n",
				r.Cell.String(), r.Current, r.Suggested,
				classify.Classify(r.Current, r.Suggested), r.Confidence, r.Rule)
		}
		bw.printf("\n")
	}
	return bw.err
}

// errWriter folds the repetitive error handling of sequential writes.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
