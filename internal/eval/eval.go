// Package eval provides the detection-quality scoring used by the
// experiment harness, the integration tests and the examples: comparing a
// set of flagged rows against the injected-error ground truth.
package eval

import "fmt"

// Metrics is the standard detection scorecard.
type Metrics struct {
	Injected  int     `json:"injected"`
	Flagged   int     `json:"flagged"`
	TruePos   int     `json:"true_pos"`
	Recall    float64 `json:"recall"`
	Precision float64 `json:"precision"`
	F1        float64 `json:"f1"`
}

// Score compares flagged rows against ground-truth error rows.
func Score(flagged, injected map[int]bool) Metrics {
	m := Metrics{Injected: len(injected), Flagged: len(flagged)}
	for r := range flagged {
		if injected[r] {
			m.TruePos++
		}
	}
	if m.Injected > 0 {
		m.Recall = float64(m.TruePos) / float64(m.Injected)
	}
	if m.Flagged > 0 {
		m.Precision = float64(m.TruePos) / float64(m.Flagged)
	}
	if m.Recall+m.Precision > 0 {
		m.F1 = 2 * m.Recall * m.Precision / (m.Recall + m.Precision)
	}
	return m
}

// String renders the scorecard compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("injected=%d flagged=%d recall=%.2f precision=%.2f f1=%.2f",
		m.Injected, m.Flagged, m.Recall, m.Precision, m.F1)
}

// RowSet builds a row set from a slice of row ids.
func RowSet(rows []int) map[int]bool {
	m := make(map[int]bool, len(rows))
	for _, r := range rows {
		m[r] = true
	}
	return m
}
