package eval

import (
	"math"
	"strings"
	"testing"
)

func TestScorePerfect(t *testing.T) {
	inj := RowSet([]int{1, 2, 3})
	m := Score(RowSet([]int{1, 2, 3}), inj)
	if m.Recall != 1 || m.Precision != 1 || m.F1 != 1 {
		t.Errorf("perfect score = %+v", m)
	}
}

func TestScorePartial(t *testing.T) {
	inj := RowSet([]int{1, 2, 3, 4})
	m := Score(RowSet([]int{1, 2, 9}), inj)
	if m.TruePos != 2 {
		t.Errorf("TruePos = %d", m.TruePos)
	}
	if m.Recall != 0.5 {
		t.Errorf("Recall = %f", m.Recall)
	}
	if math.Abs(m.Precision-2.0/3.0) > 1e-9 {
		t.Errorf("Precision = %f", m.Precision)
	}
	wantF1 := 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0/3.0)
	if math.Abs(m.F1-wantF1) > 1e-9 {
		t.Errorf("F1 = %f, want %f", m.F1, wantF1)
	}
}

func TestScoreEdges(t *testing.T) {
	m := Score(nil, nil)
	if m.Recall != 0 || m.Precision != 0 || m.F1 != 0 {
		t.Errorf("empty score = %+v", m)
	}
	// Nothing flagged but errors exist: precision 0 by convention here?
	// No flags means precision is vacuously 0 and recall 0.
	m = Score(nil, RowSet([]int{1}))
	if m.Recall != 0 || m.Flagged != 0 {
		t.Errorf("no-flag score = %+v", m)
	}
	// Flags but no errors: precision 0.
	m = Score(RowSet([]int{1}), nil)
	if m.Precision != 0 || m.Injected != 0 {
		t.Errorf("no-error score = %+v", m)
	}
}

func TestStringRendering(t *testing.T) {
	m := Score(RowSet([]int{1}), RowSet([]int{1}))
	s := m.String()
	if !strings.Contains(s, "recall=1.00") || !strings.Contains(s, "precision=1.00") {
		t.Errorf("String = %q", s)
	}
}
