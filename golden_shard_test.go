package anmat_test

// Sharded-detection acceptance on the static golden corpus: every golden
// scenario's mined headline rule set is evaluated by sharded sessions at
// K ∈ {1,2,4,8}, and the merged violation set must be byte-identical to
// the single-engine DetectContext output at parallelism 1, 4, and 8 —
// the same bytes the pinned golden files render.

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	anmat "github.com/anmat/anmat"
)

func TestGoldenCorpusShardEquivalence(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ctx := context.Background()
			// Mine the headline rule once, on a throwaway session.
			mineTbl, err := anmat.LoadCSV(filepath.Join("testdata", sc.csv))
			if err != nil {
				t.Fatal(err)
			}
			sys, err := anmat.New(anmat.WithParams(sc.params))
			if err != nil {
				t.Fatal(err)
			}
			miner := sys.NewSession("golden-shard-mine", mineTbl, sc.params)
			if err := miner.RunStages(ctx, anmat.StageProfile, anmat.StageDiscovery); err != nil {
				t.Fatal(err)
			}
			var rules []*anmat.PFD
			for _, p := range miner.Discovered {
				if p.LHS == sc.lhs && p.RHS == sc.rhs {
					rules = append(rules, p)
				}
			}
			if len(rules) == 0 {
				t.Fatalf("discovery found no %s→%s rule", sc.lhs, sc.rhs)
			}

			res, err := anmat.DetectContext(ctx, mineTbl, rules, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(res.Violations)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
					tbl, err := anmat.LoadCSV(filepath.Join("testdata", sc.csv))
					if err != nil {
						t.Fatal(err)
					}
					sess := sys.NewSessionWith("golden-shard", tbl, anmat.SessionConfig{Params: sc.params, Shards: k})
					sess.UseRules(rules)
					if _, err := sess.RunDetection(ctx); err != nil {
						t.Fatal(err)
					}
					eng, err := sess.Stream()
					if err != nil {
						t.Fatal(err)
					}
					got, err := json.Marshal(eng.Violations())
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Errorf("k=%d violations not byte-identical to single-engine detection", k)
					}
				})
			}
		})
	}
}

// TestSkewedFixtureShardEquivalence runs the pinned hot-block fixture
// (roughly half its rows share one block key, so one shard hosts most of
// the table) through sharded sessions: imbalance must show up in the
// stats while the merged violation set stays exact.
func TestSkewedFixtureShardEquivalence(t *testing.T) {
	ctx := context.Background()
	params := anmat.Params{MinCoverage: 0.05, AllowedViolations: 0.3}
	sys, err := anmat.New(anmat.WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	mineTbl, err := anmat.LoadCSV(filepath.Join("testdata", "phone_state_skewed.csv"))
	if err != nil {
		t.Fatal(err)
	}
	miner := sys.NewSession("skew-mine", mineTbl, params)
	if err := miner.RunStages(ctx, anmat.StageProfile, anmat.StageDiscovery); err != nil {
		t.Fatal(err)
	}
	var rules []*anmat.PFD
	for _, p := range miner.Discovered {
		if p.LHS == "phone" && p.RHS == "state" {
			rules = append(rules, p)
		}
	}
	if len(rules) == 0 {
		t.Fatal("discovery found no phone→state rule on the skewed fixture")
	}
	res, err := anmat.DetectContext(ctx, mineTbl, rules, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.Violations)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			tbl, err := anmat.LoadCSV(filepath.Join("testdata", "phone_state_skewed.csv"))
			if err != nil {
				t.Fatal(err)
			}
			sess := sys.NewSessionWith("skewed", tbl, anmat.SessionConfig{Params: params, Shards: k})
			sess.UseRules(rules)
			if _, err := sess.RunDetection(ctx); err != nil {
				t.Fatal(err)
			}
			eng, err := sess.Stream()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(eng.Violations())
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("k=%d skewed violations not byte-identical to single-engine detection", k)
			}
			// The fixture's hot block should leave the shards visibly
			// imbalanced (one shard hosting well over its uniform share).
			st := sess.EngineStats()
			if st.Kind != "sharded" || st.Sharded == nil {
				t.Fatalf("engine stats = %+v", st)
			}
			maxRows := 0
			for _, ps := range st.Sharded.PerShard {
				if ps.Rows > maxRows {
					maxRows = ps.Rows
				}
			}
			if uniform := tbl.NumRows() / k; maxRows <= uniform {
				t.Errorf("k=%d: expected a hot shard above the uniform share %d, max is %d", k, uniform, maxRows)
			}
		})
	}
}
