// Benchmark harness: one benchmark per evaluation artifact of the paper
// (DESIGN.md §5 maps artifacts to benches) plus ablations for the design
// choices in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// The Table 3 benches measure the full discover-and-detect pipeline on the
// corresponding synthetic dataset and report recall/precision as metrics;
// the Figure benches measure the stage behind each GUI view; the Ablation
// benches compare the optimized and naive engines.
package anmat

import (
	"context"
	"strings"
	"testing"

	"github.com/anmat/anmat/internal/blocking"
	"github.com/anmat/anmat/internal/datagen"
	"github.com/anmat/anmat/internal/detect"
	"github.com/anmat/anmat/internal/discovery"
	"github.com/anmat/anmat/internal/docstore"
	"github.com/anmat/anmat/internal/experiments"
	"github.com/anmat/anmat/internal/fd"
	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/pindex"
	"github.com/anmat/anmat/internal/profile"
	"github.com/anmat/anmat/internal/table"
	"github.com/anmat/anmat/internal/tableau"
	"github.com/anmat/anmat/internal/tokenize"
)

const benchRows = 5000

// benchTable3 runs one Table 3 block end to end per iteration and reports
// recall/precision of the final iteration as metrics.
func benchTable3(b *testing.B, run func(n int) (experiments.Table3Report, error)) {
	b.Helper()
	var rep experiments.Table3Report
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err = run(benchRows)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Recall, "recall")
	b.ReportMetric(rep.Precision, "precision")
	b.ReportMetric(float64(rep.Discovered), "rules")
}

func BenchmarkTable3_D1_PhoneState(b *testing.B) {
	benchTable3(b, experiments.Table3D1)
}

func BenchmarkTable3_D2_NameGender(b *testing.B) {
	benchTable3(b, experiments.Table3D2)
}

func BenchmarkTable3_D5_ZipCity(b *testing.B) {
	benchTable3(b, experiments.Table3D5City)
}

func BenchmarkTable3_D5_ZipState(b *testing.B) {
	benchTable3(b, experiments.Table3D5State)
}

// BenchmarkFigure2_Discovery measures the Figure 2 algorithm in both key
// modes across sizes.
func BenchmarkFigure2_Discovery(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    discovery.Mode
	}{{"Tokens", discovery.ModeTokens}, {"NGrams", discovery.ModeNGrams}} {
		for _, n := range []int{1000, benchRows} {
			ds := datagen.NameGender(n, 0.005, experiments.Seed)
			cfg := discovery.Default()
			cfg.Mode = mode.m
			b.Run(mode.name+"/"+itoa(n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := discovery.Discover(ds.Table, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure3_Profiling measures the profiling view's computation.
func BenchmarkFigure3_Profiling(b *testing.B) {
	ds := datagen.ZipCity(benchRows, 0.01, experiments.Seed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := profile.Profile(ds.Table)
		if len(tp.Columns) != 3 {
			b.Fatal("bad profile")
		}
		for j := range tp.Columns {
			profile.ColumnPatterns(ds.Table.ColumnByIndex(j))
		}
	}
}

// BenchmarkFigure4_TableauRender measures producing the discovered-PFD
// view: discovery plus tableau rendering.
func BenchmarkFigure4_TableauRender(b *testing.B) {
	ds := datagen.ZipCity(benchRows, 0.01, experiments.Seed)
	res, err := discovery.Discover(ds.Table, discovery.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		for _, p := range res.PFDs {
			sb.WriteString(p.String())
			sb.WriteString(p.Tableau.String())
		}
		if sb.Len() == 0 {
			b.Fatal("nothing rendered")
		}
	}
}

// BenchmarkFigure5_ViolationListing measures the violation view: detection
// over confirmed PFDs.
func BenchmarkFigure5_ViolationListing(b *testing.B) {
	ds := datagen.NameGender(benchRows, 0.005, experiments.Seed)
	res, err := discovery.Discover(ds.Table, discovery.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var count int
	for i := 0; i < b.N; i++ {
		vs, err := detect.New(ds.Table, detect.Options{}).DetectAll(res.PFDs)
		if err != nil {
			b.Fatal(err)
		}
		count = len(vs)
	}
	b.ReportMetric(float64(count), "violations")
}

// BenchmarkParallelDetection measures the concurrent detection engine on
// the Figure-5-scale table across worker counts. The /p1 variant is the
// sequential baseline that cmd/benchjson computes speedups against; the
// detector (and so the column indexes) is shared across iterations, so
// the bench isolates the tableau-row fan-out rather than index builds.
func BenchmarkParallelDetection(b *testing.B) {
	ds := datagen.NameGender(benchRows, 0.005, experiments.Seed)
	res, err := discovery.Discover(ds.Table, discovery.Default())
	if err != nil || len(res.PFDs) == 0 {
		b.Fatalf("discover: %v (%d rules)", err, len(res.PFDs))
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run("p"+itoa(par), func(b *testing.B) {
			d := detect.New(ds.Table, detect.Options{})
			if _, err := d.DetectAllContext(context.Background(), res.PFDs, par); err != nil {
				b.Fatal(err) // warm the index cache outside the timer
			}
			b.ReportAllocs()
			b.ResetTimer()
			var count int
			for i := 0; i < b.N; i++ {
				r, err := d.DetectAllContext(context.Background(), res.PFDs, par)
				if err != nil {
					b.Fatal(err)
				}
				count = len(r.Violations)
			}
			b.ReportMetric(float64(count), "violations")
		})
	}
}

// BenchmarkDetectorIndexReuse quantifies the shared index cache: Fresh
// rebuilds the detector (and its per-column indexes) every iteration,
// Shared reuses one detector the way a session does across its
// detection and repair stages.
func BenchmarkDetectorIndexReuse(b *testing.B) {
	ds := datagen.PhoneState(benchRows, 0.005, experiments.Seed)
	p := phonePFD(b, ds.Table)
	b.Run("Fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := detect.New(ds.Table, detect.Options{}).Detect(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Shared", func(b *testing.B) {
		d := detect.New(ds.Table, detect.Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Detect(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParamSweep measures the Section 4 parameter sweep (coverage and
// violation-ratio trade-off).
func BenchmarkParamSweep(b *testing.B) {
	b.Run("Coverage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.SweepCoverage(2000, []float64{0.01, 0.05, 0.2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Violations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.SweepViolations(2000, []float64{0, 0.05}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// phonePFD mines the phone→state PFD once for the ablation benches.
func phonePFD(b *testing.B, t *table.Table) *pfd.PFD {
	b.Helper()
	res, err := discovery.Discover(t, discovery.Default())
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range res.PFDs {
		if p.LHS == "phone" && p.RHS == "state" {
			// Constant rows only: the index ablation targets them.
			tp := tableau.New(p.Tableau.ConstantRows()...)
			return pfd.New(p.Table, p.LHS, p.RHS, tp)
		}
	}
	b.Fatal("no phone→state PFD")
	return nil
}

// BenchmarkAblation_ConstantDetection compares the pattern index against a
// full scan (DESIGN.md §6.1).
func BenchmarkAblation_ConstantDetection(b *testing.B) {
	ds := datagen.PhoneState(benchRows, 0.005, experiments.Seed)
	p := phonePFD(b, ds.Table)
	b.Run("Indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := detect.New(ds.Table, detect.Options{}).Detect(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := detect.New(ds.Table, detect.Options{DisableIndex: true}).Detect(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_VariableDetection compares blocking against the
// quadratic pair check (DESIGN.md §6.2). Both variants run at the same
// size; it is kept below benchRows because the quadratic engine touches
// every tuple pair (n=1000 → ~500k EquivalentUnder calls per iteration).
func BenchmarkAblation_VariableDetection(b *testing.B) {
	ds := datagen.ZipCity(1000, 0.01, experiments.Seed)
	q := pattern.MustParseConstrained(`<\D{4}>\D`)
	p := pfd.New(ds.Table.Name(), "zip", "city",
		tableau.New(tableau.Row{LHS: q, RHS: tableau.Wildcard}))
	b.Run("Blocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := detect.New(ds.Table, detect.Options{}).Detect(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Quadratic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := detect.New(ds.Table, detect.Options{DisableBlocking: true, DisableIndex: true}).Detect(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_TableauMinimize measures minimization (DESIGN.md §6.4).
func BenchmarkAblation_TableauMinimize(b *testing.B) {
	ds := datagen.ZipCity(benchRows, 0.01, experiments.Seed)
	cfg := discovery.Default()
	res, err := discovery.Discover(ds.Table, cfg)
	if err != nil || len(res.PFDs) == 0 {
		b.Fatalf("discover: %v", err)
	}
	rows := res.PFDs[0].Tableau.Rows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := tableau.New(rows...)
		tp.Minimize()
	}
}

// BenchmarkBaseline_FDvsPFD measures the Section 1 comparison: whole-value
// FD checking vs PFD detection on the same dirty data.
func BenchmarkBaseline_FDvsPFD(b *testing.B) {
	ds := datagen.PhoneState(benchRows, 0.005, experiments.Seed)
	p := phonePFD(b, ds.Table)
	b.Run("PFD", func(b *testing.B) {
		var caught int
		for i := 0; i < b.N; i++ {
			vs, err := detect.New(ds.Table, detect.Options{}).Detect(p)
			if err != nil {
				b.Fatal(err)
			}
			caught = len(vs)
		}
		b.ReportMetric(float64(caught), "violations")
	})
	b.Run("FD", func(b *testing.B) {
		var caught int
		for i := 0; i < b.N; i++ {
			vs, err := fd.Check(ds.Table, fd.FD{LHS: "phone", RHS: "state"})
			if err != nil {
				b.Fatal(err)
			}
			caught = len(vs)
		}
		b.ReportMetric(float64(caught), "violations")
	})
	b.Run("FDDiscovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fd.Discover(ds.Table, 0)
		}
	})
}

// Micro-benchmarks for the pattern substrate.

func BenchmarkPattern_Match(b *testing.B) {
	p := pattern.MustParse(`850\D{7}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Matches("8505467600") {
			b.Fatal("should match")
		}
	}
}

func BenchmarkPattern_Containment(b *testing.B) {
	small := pattern.MustParse(`John\ \A*`)
	big := pattern.MustParse(`\LU\LL*\ \A*`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !big.Contains(small) {
			b.Fatal("containment expected")
		}
	}
}

func BenchmarkPattern_Signature(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pattern.Signature("Holloway, Donald E.") == "" {
			b.Fatal("empty signature")
		}
	}
}

func BenchmarkPattern_ExtractKey(b *testing.B) {
	q := pattern.MustParseConstrained(`<\LU\LL*\ >\A*`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(q.Extract("John Charles")) == 0 {
			b.Fatal("no key")
		}
	}
}

func BenchmarkPIndex_Build(b *testing.B) {
	ds := datagen.PhoneState(benchRows, 0, experiments.Seed)
	vals, _ := ds.Table.Column("phone")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pindex.Build(vals)
	}
}

func BenchmarkPIndex_Query(b *testing.B) {
	ds := datagen.PhoneState(benchRows, 0, experiments.Seed)
	vals, _ := ds.Table.Column("phone")
	ix := pindex.Build(vals)
	q := pattern.MustParse(`850\D{7}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ix.Match(q)) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	b.Run("Tokens", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(tokenize.Tokenize("Holloway, Donald E.")) != 3 {
				b.Fatal("bad tokenization")
			}
		}
	})
	b.Run("NGrams", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(tokenize.NGrams("8505467600", 3)) != 8 {
				b.Fatal("bad n-grams")
			}
		}
	})
}

func BenchmarkBlocking(b *testing.B) {
	ds := datagen.ZipCity(benchRows, 0.01, experiments.Seed)
	lhs, _ := ds.Table.Column("zip")
	rhs, _ := ds.Table.Column("city")
	q := pattern.MustParseConstrained(`<\D{4}>\D`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(blocking.Blocks(q, lhs, rhs)) == 0 {
			b.Fatal("no blocks")
		}
	}
}

func BenchmarkIncrementalIngest(b *testing.B) {
	ds := datagen.ZipCity(benchRows, 0.01, experiments.Seed)
	q := pattern.MustParseConstrained(`<\D{4}>\D`)
	p := pfd.New(ds.Table.Name(), "zip", "city",
		tableau.New(tableau.Row{LHS: q, RHS: tableau.Wildcard}))
	rows := make([][]string, ds.Table.NumRows())
	for r := range rows {
		rows[r] = ds.Table.Row(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, err := detect.NewIncremental(ds.Table.Columns(), []*pfd.PFD{p})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			inc.Ingest(row)
		}
	}
	b.ReportMetric(float64(benchRows), "rows/iter")
}

func BenchmarkDocstore(b *testing.B) {
	b.Run("Insert", func(b *testing.B) {
		s := docstore.NewMem()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Insert("c", docstore.Doc{"k": i})
		}
	})
	b.Run("Find", func(b *testing.B) {
		s := docstore.NewMem()
		for i := 0; i < 1000; i++ {
			s.Insert("c", docstore.Doc{"k": i % 10})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(s.Find("c", docstore.Filter{"k": 3})) != 100 {
				b.Fatal("bad find")
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
