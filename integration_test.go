package anmat

import (
	"context"
	"testing"

	"github.com/anmat/anmat/internal/datagen"
	"github.com/anmat/anmat/internal/pattern"
	"github.com/anmat/anmat/internal/pfd"
	"github.com/anmat/anmat/internal/tableau"
)

// TestPipelineAcrossFamilies runs the whole pipeline on every synthetic
// dataset family and checks the end-to-end quality floor: on each family,
// repair-identified rows must cover ≥90% of the injected errors with ≥90%
// precision. This is the regression net for the full system.
func TestPipelineAcrossFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	families := []struct {
		name string
		gen  func(n int, errRate float64, seed int64) *datagen.Dataset
		n    int
		rate float64
		cols map[string]bool // RHS columns errors are injected into
	}{
		{"phone", datagen.PhoneState, 4000, 0.005, map[string]bool{"state": true}},
		{"name", datagen.NameGender, 4000, 0.005, map[string]bool{"gender": true}},
		{"zip", datagen.ZipCity, 4000, 0.01, map[string]bool{"city": true, "state": true}},
		{"employee", datagen.EmployeeID, 4000, 0.005, map[string]bool{"department": true, "grade": true}},
		{"compound", datagen.Compound, 4000, 0.005, map[string]bool{"molecule_type": true}},
		{"addresses", datagen.Addresses, 4000, 0.005, map[string]bool{"state": true}},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			ds := fam.gen(fam.n, fam.rate, 2019)
			sys, err := NewSystem("")
			if err != nil {
				t.Fatal(err)
			}
			sess := sys.NewSession("it", ds.Table, DefaultParams())
			if err := sess.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if len(sess.Discovered) == 0 {
				t.Fatal("no PFDs discovered")
			}

			flagged := map[int]bool{}
			for _, r := range sess.Repairs {
				if fam.cols[r.Cell.Column] {
					flagged[r.Cell.Row] = true
				}
			}
			injected := map[int]bool{}
			for _, e := range ds.Injected {
				if fam.cols[e.Cell.Column] {
					injected[e.Cell.Row] = true
				}
			}
			if len(injected) == 0 {
				t.Fatal("no injected errors to score")
			}
			caught, truePos := 0, 0
			for r := range injected {
				if flagged[r] {
					caught++
				}
			}
			for r := range flagged {
				if injected[r] {
					truePos++
				}
			}
			recall := float64(caught) / float64(len(injected))
			precision := 1.0
			if len(flagged) > 0 {
				precision = float64(truePos) / float64(len(flagged))
			}
			t.Logf("%s: injected=%d flagged=%d recall=%.2f precision=%.2f pfds=%d",
				fam.name, len(injected), len(flagged), recall, precision, len(sess.Discovered))
			if recall < 0.9 {
				t.Errorf("recall %.2f < 0.9", recall)
			}
			if precision < 0.9 {
				t.Errorf("precision %.2f < 0.9", precision)
			}
		})
	}
}

// TestFDAsPFDSpecialCase shows PFDs strictly subsume classical FDs: a PFD
// whose single variable row constrains the whole value (<\A*> → ⊥) has
// exactly whole-value FD semantics.
func TestFDAsPFDSpecialCase(t *testing.T) {
	tbl, err := NewTable("t", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"x", "1"}, {"x", "1"}, {"x", "2"}, // FD a→b violated at row 2
		{"y", "3"}, {"y", "3"},
	}
	for _, r := range rows {
		if err := tbl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	asPFD := pfd.New("t", "a", "b", tableau.New(tableau.Row{
		LHS: pattern.WholeValue(pattern.AnyString()),
		RHS: tableau.Wildcard,
	}))
	vs, err := Detect(tbl, []*pfd.PFD{asPFD})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("FD-as-PFD violations = %d, want 1", len(vs))
	}
	found := false
	for _, tu := range vs[0].Tuples {
		if tu == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("row 2 (the FD violation) not in %v", vs[0].Tuples)
	}
}
