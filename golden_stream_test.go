package anmat_test

// Golden delta corpus: the committed phone_state delta script replays
// through the incremental detection engine and the rendered per-batch
// violation diffs are pinned, alongside the corpus invariant that the
// maintained violation set stays byte-identical to a fresh full
// detection (at parallelism 1 and 4) after every batch. Regenerate with:
//
//	go test -run TestGoldenStreamDeltas -update

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	anmat "github.com/anmat/anmat"
)

func TestGoldenStreamDeltas(t *testing.T) {
	got := goldenStreamReplay(t, 1)
	path := filepath.Join("testdata", "golden", "phone_state_deltas.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantB, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(wantB) {
		t.Errorf("delta replay differs from %s (rerun with -update if intended):\n%s",
			path, diffLines(string(wantB), got))
	}
}

// TestGoldenStreamDeltasSharded replays the same committed delta script
// through sharded sessions at K ∈ {2,4,8} and requires the rendered
// per-batch diffs — every violation line, every count — to be
// byte-identical to the single-engine golden file. This is the corpus
// half of the sharding acceptance criterion.
func TestGoldenStreamDeltasSharded(t *testing.T) {
	wantB, err := os.ReadFile(filepath.Join("testdata", "golden", "phone_state_deltas.golden"))
	if err != nil {
		t.Fatalf("missing golden file (run TestGoldenStreamDeltas with -update): %v", err)
	}
	for _, k := range []int{2, 4, 8} {
		k := k
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			if got := goldenStreamReplay(t, k); got != string(wantB) {
				t.Errorf("sharded (k=%d) delta replay diverges from the single-engine golden:\n%s",
					k, diffLines(string(wantB), got))
			}
		})
	}
}

// goldenStreamReplay runs the committed delta script through a session
// with the given shard count and returns the rendered replay, asserting
// the maintained-set invariant after every batch.
func goldenStreamReplay(t *testing.T, shards int) string {
	t.Helper()
	tbl, err := anmat.LoadCSV(filepath.Join("testdata", "phone_state.csv"))
	if err != nil {
		t.Fatal(err)
	}
	params := anmat.Params{MinCoverage: 0.05, AllowedViolations: 0.2}
	sys, err := anmat.New(anmat.WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	sess := sys.NewSessionWith("golden-stream", tbl, anmat.SessionConfig{Params: params, Shards: shards})
	ctx := context.Background()
	if err := sess.RunStages(ctx, anmat.StageProfile, anmat.StageDiscovery); err != nil {
		t.Fatal(err)
	}
	var rules []*anmat.PFD
	for _, p := range sess.Discovered {
		if p.LHS == "phone" && p.RHS == "state" {
			rules = append(rules, p)
		}
	}
	if len(rules) == 0 {
		t.Fatal("discovery found no phone→state rule")
	}
	sess.UseRules(rules)
	if _, err := sess.RunDetection(ctx); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join("testdata", "phone_state_deltas.json"))
	if err != nil {
		t.Fatal(err)
	}
	var script []anmat.DeltaBatch
	if err := json.Unmarshal(raw, &script); err != nil {
		t.Fatalf("parse delta script: %v", err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# golden: phone_state delta replay (%d batch(es))\n", len(script))
	fmt.Fprintf(&b, "baseline: %d row(s), %d violation(s)\n", tbl.NumRows(), len(sess.Violations))
	for bi, batch := range script {
		diff, err := sess.ApplyDeltas(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		fmt.Fprintf(&b, "\n## batch %d → seq %d: %d row(s), +%d -%d\n",
			bi+1, diff.Seq, diff.Rows, len(diff.Added), len(diff.Removed))
		for _, v := range diff.Added {
			fmt.Fprintf(&b, "+ %s\n", renderViolationLine(v))
		}
		for _, v := range diff.Removed {
			fmt.Fprintf(&b, "- %s\n", renderViolationLine(v))
		}

		// The corpus invariant: after every batch the maintained set is
		// byte-identical to a fresh full detection, at parallelism 1 and 4.
		eng, err := sess.Stream()
		if err != nil {
			t.Fatal(err)
		}
		maintained, err := json.Marshal(eng.Violations())
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			res, err := anmat.DetectContext(ctx, tbl, rules, par)
			if err != nil {
				t.Fatalf("batch %d parallelism %d: %v", bi, par, err)
			}
			full, err := json.Marshal(res.Violations)
			if err != nil {
				t.Fatal(err)
			}
			if string(maintained) != string(full) {
				t.Fatalf("batch %d: maintained set not byte-identical to full detection at parallelism %d", bi, par)
			}
		}
	}
	fmt.Fprintf(&b, "\n## final: %d row(s), %d violation(s)\n", tbl.NumRows(), len(sess.Violations))
	return b.String()
}

// renderViolationLine mirrors the violation rendering of the static
// golden corpus.
func renderViolationLine(v anmat.Violation) string {
	cells := make([]string, len(v.Cells))
	for i, c := range v.Cells {
		cells[i] = c.String()
	}
	return fmt.Sprintf("%s | cells %s | observed %q expected %q",
		v.Row, strings.Join(cells, " "), v.Observed, v.Expected)
}
