# Development entry points. `make bench` is the benchmark regression
# harness: it runs the detection benchmarks and writes BENCH_detect.json
# (ns/op, allocs/op, speedup vs parallelism=1) — see README "Detection
# engine".

GO        ?= go
BENCHTIME ?=
BENCHOUT  ?= BENCH_detect.json

.PHONY: all build vet test race bench fuzz

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BENCHTIME=1x makes a fast smoke record (CI); leave empty for real numbers.
bench:
	$(GO) run ./cmd/benchjson -out $(BENCHOUT) $(if $(BENCHTIME),-benchtime $(BENCHTIME))

fuzz:
	$(GO) test ./internal/table -run '^$$' -fuzz FuzzReadCSV -fuzztime 30s
