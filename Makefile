# Development entry points. `make bench` is the benchmark regression
# harness: it runs the detection benchmarks and writes BENCH_detect.json
# (ns/op, allocs/op, speedup vs parallelism=1) — see README "Detection
# engine". `make bench-stream` writes BENCH_stream.json: incremental
# violation maintenance vs full re-detection at delta batch sizes
# 1/10/100 (speedup_vs_full) — see README "Streaming ingestion".

GO        ?= go
BENCHTIME ?=
BENCHOUT  ?= BENCH_detect.json
STREAMOUT ?= BENCH_stream.json

.PHONY: all build vet test race bench bench-stream fuzz vulncheck

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BENCHTIME=1x makes a fast smoke record (CI); leave empty for real numbers.
bench:
	$(GO) run ./cmd/benchjson -out $(BENCHOUT) $(if $(BENCHTIME),-benchtime $(BENCHTIME))

bench-stream:
	$(GO) run ./cmd/benchjson -out $(STREAMOUT) -pkg ./internal/stream \
		-bench 'BenchmarkStreamAppend|BenchmarkStreamRepair' $(if $(BENCHTIME),-benchtime $(BENCHTIME))

fuzz:
	$(GO) test ./internal/table -run '^$$' -fuzz FuzzReadCSV -fuzztime 30s

# Requires network access to fetch the scanner and vuln DB; CI runs it.
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...
