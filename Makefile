# Development entry points. `make bench` is the benchmark regression
# harness: it runs the detection benchmarks and writes BENCH_detect.json
# (ns/op, allocs/op, speedup vs parallelism=1) — see README "Detection
# engine". `make bench-stream` writes BENCH_stream.json: incremental
# violation maintenance vs full re-detection at delta batch sizes
# 1/10/100 (speedup_vs_full), plus the fsync-on WAL journal comparison —
# serial commits vs group commit at 8 concurrent writers
# (speedup_vs_serial, fsync_batches_per_commit) — see README "Streaming
# ingestion" and "Operations".
# `make bench-shard` writes BENCH_shard.json: full sharded detection over
# a ≥1M-row datagen table at K=1/2/4/8 (rows/sec, speedup_vs_1shard,
# plus detect_p50_ms/detect_p95_ms read from the obs span histogram the
# per-shard engine bootstraps feed) — see README "Sharding".
# SHARD_BENCH_ROWS scales the table for quick local runs.

GO        ?= go
BENCHTIME ?=
BENCHOUT  ?= BENCH_detect.json
STREAMOUT ?= BENCH_stream.json
SHARDOUT  ?= BENCH_shard.json
# Table size of the shard bench (read by the benchmark as an env var).
export SHARD_BENCH_ROWS

.PHONY: all build vet test race bench bench-stream bench-shard cluster-e2e hardening fuzz vulncheck lint-obs

all: vet lint-obs build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Observability naming lint: metric families must match anmat_[a-z_]+
# with type-appropriate unit suffixes, and every span name in the source
# must be registered in the span catalog. See cmd/obslint.
lint-obs:
	$(GO) run ./cmd/obslint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BENCHTIME=1x makes a fast smoke record (CI); leave empty for real numbers.
bench:
	$(GO) run ./cmd/benchjson -out $(BENCHOUT) $(if $(BENCHTIME),-benchtime $(BENCHTIME))

bench-stream:
	$(GO) run ./cmd/benchjson -out $(STREAMOUT) -pkg ./internal/stream,./internal/persist \
		-bench 'BenchmarkStreamAppend|BenchmarkStreamRepair|BenchmarkWALJournal' $(if $(BENCHTIME),-benchtime $(BENCHTIME))

bench-shard:
	$(GO) run ./cmd/benchjson -out $(SHARDOUT) -pkg ./internal/shard \
		-bench 'BenchmarkShardDetect|BenchmarkShardApply' $(if $(BENCHTIME),-benchtime $(BENCHTIME))

# Multi-process distributed-mode acceptance: real worker subprocesses on
# loopback TCP, golden-corpus equivalence at N=1/2/4 plus kill-a-worker
# failover. ANMAT_E2E_LOGDIR collects per-worker logs (CI uploads them).
cluster-e2e:
	$(GO) test -race -v -run 'TestE2E|TestClusterEquivalence|TestFailoverRestoresFromWAL|TestSeqIdempotencyUnderFlakyTransport' \
		./cmd/anmat-server/ ./internal/cluster/

# Hostile-traffic acceptance: multi-tenant concurrent load against
# quotas + fsync-on group commit, crash, and byte-identical recovery —
# plus the admission, body-cap, and backup/restore suites, under -race.
hardening:
	$(GO) test -race -v -run 'TestHardeningMultiTenantRecovery|TestAdmission|TestConfirmEmptyBodyAndCap|TestBackupRestore|TestRestore|TestGroupCommit|TestHTTPServerTimeouts' \
		./internal/server/ ./internal/persist/ ./cmd/anmat-server/

fuzz:
	$(GO) test ./internal/table -run '^$$' -fuzz FuzzReadCSV -fuzztime 30s

# Requires network access to fetch the scanner and vuln DB; CI runs it.
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...
