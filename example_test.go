package anmat_test

import (
	"fmt"
	"log"

	anmat "github.com/anmat/anmat"
)

// ExampleDiscover mines the paper's λ3-style rule from a small dirty zip
// table and detects the seeded error.
func ExampleDiscover() {
	t, err := anmat.NewTable("Zip", []string{"zip", "city"})
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]string{
		{"90001", "Los Angeles"}, {"90002", "Los Angeles"},
		{"90003", "Los Angeles"}, {"90005", "Los Angeles"},
		{"90006", "Los Angeles"},
		{"90004", "New York"}, // the erroneous s4 of Table 2
	}
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			log.Fatal(err)
		}
	}

	cfg := anmat.DefaultDiscoveryConfig()
	cfg.MinCoverage = 0.3
	cfg.MaxViolationRatio = 0.25
	cfg.MineVariable = false
	pfds, err := anmat.Discover(t, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pfds {
		for _, row := range p.Tableau.Rows() {
			fmt.Println(row.String())
		}
	}
	vs, err := anmat.Detect(t, pfds)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vs {
		fmt.Printf("violation at row %d: observed %q, expected %q\n",
			v.Tuples[0], v.Observed, v.Expected)
	}
	// Output:
	// <9000>\D → Los Angeles
	// violation at row 5: observed "New York", expected "Los Angeles"
}

// ExampleSuggestRepairs completes the loop: the violation's cell is
// repaired to the rule's constant.
func ExampleSuggestRepairs() {
	t, _ := anmat.NewTable("Zip", []string{"zip", "city"})
	for _, r := range [][]string{
		{"90001", "Los Angeles"}, {"90002", "Los Angeles"},
		{"90003", "Los Angeles"}, {"90005", "Los Angeles"},
		{"90006", "Los Angeles"}, {"90004", "New York"},
	} {
		_ = t.Append(r)
	}
	cfg := anmat.DefaultDiscoveryConfig()
	cfg.MinCoverage = 0.3
	cfg.MaxViolationRatio = 0.25
	cfg.MineVariable = false
	pfds, _ := anmat.Discover(t, cfg)
	rs, _ := anmat.SuggestRepairs(t, pfds)
	n, _ := anmat.ApplyRepairs(t, rs)
	fmt.Printf("repaired %d cell(s)\n", n)
	v, _ := t.CellByName(5, "city")
	fmt.Println(v)
	// Output:
	// repaired 1 cell(s)
	// Los Angeles
}
