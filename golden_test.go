package anmat_test

// Golden end-to-end corpus: the paper's headline scenarios (phone→state,
// zip→city, zip→state, name→gender) run discovery → detection → repairs
// against small committed CSVs, and the exact rendered output — tableaux,
// violation list, repair suggestions — is diffed against a pinned golden
// file. Regenerate with:
//
//	go test -run TestGoldenCorpus -update
//
// The test also asserts the acceptance criterion of the parallel engine:
// DetectContext output is byte-identical to the sequential path at
// parallelism 1, 4, and 8.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	anmat "github.com/anmat/anmat"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

type goldenScenario struct {
	name     string // golden file stem
	csv      string // testdata CSV
	lhs, rhs string // the headline dependency to pin
	params   anmat.Params
}

func goldenScenarios() []goldenScenario {
	// The corpus is mined with a looser violation tolerance than the demo
	// default so rules survive the injected 3% error rate and the errors
	// themselves surface as violations.
	p := anmat.Params{MinCoverage: 0.05, AllowedViolations: 0.2}
	return []goldenScenario{
		{name: "phone_state", csv: "phone_state.csv", lhs: "phone", rhs: "state", params: p},
		{name: "zip_city", csv: "zip.csv", lhs: "zip", rhs: "city", params: p},
		{name: "zip_state", csv: "zip.csv", lhs: "zip", rhs: "state", params: p},
		{name: "name_gender", csv: "name_gender.csv", lhs: "full_name", rhs: "gender", params: p},
	}
}

func TestGoldenCorpus(t *testing.T) {
	for _, sc := range goldenScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			tbl, err := anmat.LoadCSV(filepath.Join("testdata", sc.csv))
			if err != nil {
				t.Fatal(err)
			}
			sys, err := anmat.New(anmat.WithParams(sc.params))
			if err != nil {
				t.Fatal(err)
			}
			sess := sys.NewSession("golden", tbl, sc.params)
			ctx := context.Background()
			if err := sess.RunStages(ctx, anmat.StageProfile, anmat.StageDiscovery); err != nil {
				t.Fatal(err)
			}
			var rules []*anmat.PFD
			for _, p := range sess.Discovered {
				if p.LHS == sc.lhs && p.RHS == sc.rhs {
					rules = append(rules, p)
				}
			}
			if len(rules) == 0 {
				t.Fatalf("discovery found no %s→%s rule among %d PFDs", sc.lhs, sc.rhs, len(sess.Discovered))
			}

			// Parallel engine byte-identity on the corpus.
			res1, err := anmat.DetectContext(ctx, tbl, rules, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(res1.Violations)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{4, 8} {
				res, err := anmat.DetectContext(ctx, tbl, rules, par)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				got, err := json.Marshal(res.Violations)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Errorf("parallelism %d: detection output not byte-identical to sequential", par)
				}
			}

			repairs, err := anmat.SuggestRepairs(tbl, rules)
			if err != nil {
				t.Fatal(err)
			}
			if len(res1.Violations) == 0 || len(repairs) == 0 {
				t.Fatalf("scenario must be non-trivial: %d violations, %d repairs",
					len(res1.Violations), len(repairs))
			}

			got := renderGolden(sc, rules, res1.Violations, repairs)
			path := filepath.Join("testdata", "golden", sc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantB, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(wantB) {
				t.Errorf("output differs from %s (rerun with -update if intended):\n%s",
					path, diffLines(string(wantB), got))
			}
		})
	}
}

// renderGolden produces the canonical, fully deterministic text form of
// one scenario's pipeline products.
func renderGolden(sc goldenScenario, rules []*anmat.PFD, vs []anmat.Violation, rs []anmat.Repair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# golden: %s (%s -> %s)\n", sc.name, sc.lhs, sc.rhs)
	fmt.Fprintf(&b, "\n## tableaux (%d rule(s))\n", len(rules))
	for _, p := range rules {
		fmt.Fprintf(&b, "%s -> %s coverage=%.4f source=%s\n", p.LHS, p.RHS, p.Coverage, p.Source)
		for _, row := range p.Tableau.Rows() {
			fmt.Fprintf(&b, "  %s [support %d]\n", row, row.Support)
		}
	}
	fmt.Fprintf(&b, "\n## violations (%d)\n", len(vs))
	for _, v := range vs {
		cells := make([]string, len(v.Cells))
		for i, c := range v.Cells {
			cells[i] = c.String()
		}
		fmt.Fprintf(&b, "%s | cells %s | observed %q expected %q\n",
			v.Row, strings.Join(cells, " "), v.Observed, v.Expected)
	}
	fmt.Fprintf(&b, "\n## repairs (%d)\n", len(rs))
	for _, r := range rs {
		fmt.Fprintf(&b, "%s: %q -> %q (confidence %.4f) rule %s\n",
			r.Cell, r.Current, r.Suggested, r.Confidence, r.Rule)
	}
	return b.String()
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, wl, gl)
		}
	}
	return b.String()
}
